"""Per-layer task assignment and group-size adjustment (step 3 of
Algorithm 1).

Within one layer the symbolic cores are split into ``g`` subsets and the
independent M-tasks of the layer are dealt to the subsets by the modified
greedy algorithm for independent uniprocessor tasks [Sahni 1976]: tasks
in decreasing order of execution time, each to the subset with the
smallest accumulated time (LPT).  The subsequent *group adjustment*
resizes the subsets proportionally to their accumulated sequential work.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import Callable, Dict, List, Optional, Sequence

from ..core.task import MTask

__all__ = [
    "equal_partition",
    "lpt_assign",
    "lpt_assign_indices",
    "round_robin_assign",
    "adjust_group_sizes",
]


def equal_partition(total: int, g: int) -> List[int]:
    """Split ``total`` symbolic cores into ``g`` near-equal subset sizes."""
    if g <= 0:
        raise ValueError("g must be positive")
    if g > total:
        raise ValueError(f"cannot build {g} non-empty subsets from {total} cores")
    base, rem = divmod(total, g)
    return [base + (1 if i < rem else 0) for i in range(g)]


def lpt_assign(
    tasks: Sequence[MTask],
    time_of: Callable[[MTask], float],
    g: int,
) -> List[List[MTask]]:
    """Longest-processing-time-first assignment to ``g`` subsets.

    Tasks are considered in decreasing order of ``time_of`` and assigned
    to the subset with the smallest accumulated execution time (the
    modified greedy scheduler with 4/3 sub-optimality bound referenced in
    Section 3.2).  Ties fall to the lowest-indexed subset, which keeps
    the result deterministic.

    The open subsets live in a min-heap keyed on ``(load, index)``, so
    one assignment costs ``O(log g)`` instead of the former ``O(g)``
    linear scan -- ``O(n log n + n log g)`` per call overall.  ``time_of``
    is evaluated exactly once per task; every decision (including
    tie-breaks and the floating-point load accumulation order) is
    identical to the scan implementation.
    """
    tasks = list(tasks)
    times = [time_of(t) for t in tasks]
    order = sorted(range(len(tasks)), key=lambda i: (-times[i], tasks[i].name))
    idx_groups = lpt_assign_indices(order, times, g)
    return [[tasks[i] for i in grp] for grp in idx_groups]


def lpt_assign_indices(
    order: Sequence[int], times: Sequence[float], g: int
) -> List[List[int]]:
    """Index-level LPT core: deal task indices (pre-sorted by decreasing
    ``times`` with a deterministic tie-break) to ``g`` subsets.

    This is the exact decision loop of :func:`lpt_assign` minus the task
    objects; the ``g``-search calls it directly so one sort per distinct
    cost column serves every candidate ``g`` probing that column.
    """
    if g <= 0:
        # the historical behaviour was an IndexError on heap[0] for any
        # non-empty order; fail with the same contract equal_partition uses
        raise ValueError("g must be positive")
    groups: List[List[int]] = [[] for _ in range(g)]
    heap = [(0.0, l) for l in range(g)]  # ascending indices: already a heap
    replace = heapq.heapreplace
    for i in order:
        load, l = heap[0]
        groups[l].append(i)
        replace(heap, (load + times[i], l))
    return groups


def round_robin_assign(
    tasks: Sequence[MTask],
    time_of: Callable[[MTask], float],
    g: int,
) -> List[List[MTask]]:
    """Naive round-robin assignment; ablation baseline for LPT."""
    groups: List[List[MTask]] = [[] for _ in range(g)]
    for i, t in enumerate(tasks):
        groups[i % g].append(t)
    return groups


def adjust_group_sizes(
    groups: Sequence[Sequence[MTask]],
    seq_work: Callable[[MTask], float],
    total_cores: int,
    tseq: Optional[Sequence[float]] = None,
) -> List[int]:
    """Group adjustment: sizes proportional to accumulated sequential work.

    ``g_l = P * Tseq(G_l) / sum_j Tseq(G_j)`` apportioned by the largest
    remainder (floor everyone, hand the leftover cores to the largest
    fractional parts), so the sizes sum to ``total_cores``, every group
    keeps at least one core, and no group shrinks below the ``min_procs``
    of its widest task.  Largest remainder avoids Python's banker's
    rounding (``round(2.5) == 2``), which biased ``.5`` ideals toward
    even group sizes.

    ``tseq`` optionally supplies the per-group accumulated sequential
    work (one float per group, summed in group order); callers that
    already hold batch-evaluated costs pass it to skip the per-task
    ``seq_work`` probes.  The repair loops run in ``O(g log g + d)`` for
    a core deficit ``d`` -- groups are ordered once and cycled through a
    deque, never re-sorted or re-scanned.
    """
    g = len(groups)
    if g == 0:
        return []
    if g > total_cores:
        raise ValueError(f"{g} groups cannot share {total_cores} cores")
    if tseq is None:
        tseq = [sum(seq_work(t) for t in grp) for grp in groups]
    else:
        tseq = list(tseq)
        if len(tseq) != g:
            raise ValueError(f"tseq has {len(tseq)} entries for {g} groups")
    total_work = sum(tseq)
    floors = [max((max((t.min_procs for t in grp), default=1)), 1) for grp in groups]
    if sum(floors) > total_cores:
        raise ValueError("min_procs constraints exceed the available cores")
    if not math.isfinite(total_work):
        # a NaN/inf work sum would turn every ideal into NaN and crash
        # int(); degrade to the same equal-split path as zero work
        total_work = 0.0
    if total_work <= 0:
        # no work to weight by: aim for equal sizes, but go through the
        # same apportionment below so min_procs floors are still honoured
        ideal = [total_cores / g] * g
    else:
        ideal = [total_cores * w / total_work for w in tseq]
    # largest-remainder apportionment: floor, then hand the remaining
    # cores to the largest fractional parts (ties to the lower index)
    base = [int(x) for x in ideal]
    leftover = total_cores - sum(base)
    by_fraction = sorted(range(g), key=lambda i: (base[i] - ideal[i], i))
    for i in by_fraction[: max(0, leftover)]:
        base[i] += 1
    sizes = [max(f, b) for f, b in zip(floors, base)]
    # repair the floor clamping so sizes sum to total_cores
    diff = total_cores - sum(sizes)
    # fractional parts guide who gains/loses first; sorted once, then
    # cycled -- a group at its floor leaves the rotation for good (sizes
    # only shrink here, so it can never become shrinkable again)
    if diff > 0:
        order_gain = sorted(range(g), key=lambda i: (sizes[i] - ideal[i], i))
        k = 0
        while diff > 0:
            sizes[order_gain[k % g]] += 1
            diff -= 1
            k += 1
    elif diff < 0:
        order_lose = sorted(range(g), key=lambda i: (ideal[i] - sizes[i], i))
        rotation = deque(i for i in order_lose if sizes[i] > floors[i])
        while diff < 0:
            if not rotation:  # unreachable: feasibility checked above
                raise ValueError(
                    "cannot satisfy min_procs floors within total cores"
                )
            i = rotation.popleft()
            sizes[i] -= 1
            diff += 1
            if sizes[i] > floors[i]:
                rotation.append(i)
    return sizes
