"""Per-layer task assignment and group-size adjustment (step 3 of
Algorithm 1).

Within one layer the symbolic cores are split into ``g`` subsets and the
independent M-tasks of the layer are dealt to the subsets by the modified
greedy algorithm for independent uniprocessor tasks [Sahni 1976]: tasks
in decreasing order of execution time, each to the subset with the
smallest accumulated time (LPT).  The subsequent *group adjustment*
resizes the subsets proportionally to their accumulated sequential work.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from ..core.task import MTask

__all__ = ["equal_partition", "lpt_assign", "round_robin_assign", "adjust_group_sizes"]


def equal_partition(total: int, g: int) -> List[int]:
    """Split ``total`` symbolic cores into ``g`` near-equal subset sizes."""
    if g <= 0:
        raise ValueError("g must be positive")
    if g > total:
        raise ValueError(f"cannot build {g} non-empty subsets from {total} cores")
    base, rem = divmod(total, g)
    return [base + (1 if i < rem else 0) for i in range(g)]


def lpt_assign(
    tasks: Sequence[MTask],
    time_of: Callable[[MTask], float],
    g: int,
) -> List[List[MTask]]:
    """Longest-processing-time-first assignment to ``g`` subsets.

    Tasks are considered in decreasing order of ``time_of`` and assigned
    to the subset with the smallest accumulated execution time (the
    modified greedy scheduler with 4/3 sub-optimality bound referenced in
    Section 3.2).  Ties fall to the lowest-indexed subset, which keeps
    the result deterministic.
    """
    groups: List[List[MTask]] = [[] for _ in range(g)]
    loads = [0.0] * g
    order = sorted(tasks, key=lambda t: (-time_of(t), t.name))
    for t in order:
        l = min(range(g), key=lambda i: (loads[i], i))
        groups[l].append(t)
        loads[l] += time_of(t)
    return groups


def round_robin_assign(
    tasks: Sequence[MTask],
    time_of: Callable[[MTask], float],
    g: int,
) -> List[List[MTask]]:
    """Naive round-robin assignment; ablation baseline for LPT."""
    groups: List[List[MTask]] = [[] for _ in range(g)]
    for i, t in enumerate(tasks):
        groups[i % g].append(t)
    return groups


def adjust_group_sizes(
    groups: Sequence[Sequence[MTask]],
    seq_work: Callable[[MTask], float],
    total_cores: int,
) -> List[int]:
    """Group adjustment: sizes proportional to accumulated sequential work.

    ``g_l = P * Tseq(G_l) / sum_j Tseq(G_j)`` apportioned by the largest
    remainder (floor everyone, hand the leftover cores to the largest
    fractional parts), so the sizes sum to ``total_cores``, every group
    keeps at least one core, and no group shrinks below the ``min_procs``
    of its widest task.  Largest remainder avoids Python's banker's
    rounding (``round(2.5) == 2``), which biased ``.5`` ideals toward
    even group sizes.
    """
    g = len(groups)
    if g == 0:
        return []
    if g > total_cores:
        raise ValueError(f"{g} groups cannot share {total_cores} cores")
    tseq = [sum(seq_work(t) for t in grp) for grp in groups]
    total_work = sum(tseq)
    floors = [max((max((t.min_procs for t in grp), default=1)), 1) for grp in groups]
    if sum(floors) > total_cores:
        raise ValueError("min_procs constraints exceed the available cores")
    if total_work <= 0:
        # no work to weight by: aim for equal sizes, but go through the
        # same apportionment below so min_procs floors are still honoured
        ideal = [total_cores / g] * g
    else:
        ideal = [total_cores * w / total_work for w in tseq]
    # largest-remainder apportionment: floor, then hand the remaining
    # cores to the largest fractional parts (ties to the lower index)
    base = [int(x) for x in ideal]
    leftover = total_cores - sum(base)
    by_fraction = sorted(range(g), key=lambda i: (base[i] - ideal[i], i))
    for i in by_fraction[: max(0, leftover)]:
        base[i] += 1
    sizes = [max(f, b) for f, b in zip(floors, base)]
    # repair the floor clamping so sizes sum to total_cores
    diff = total_cores - sum(sizes)
    # fractional parts guide who gains/loses first
    order_gain = sorted(range(g), key=lambda i: (sizes[i] - ideal[i], i))
    order_lose = sorted(range(g), key=lambda i: (ideal[i] - sizes[i], i))
    k = 0
    while diff > 0:
        sizes[order_gain[k % g]] += 1
        diff -= 1
        k += 1
    while diff < 0:
        shrunk = False
        for i in order_lose:
            if diff == 0:
                break
            if sizes[i] > floors[i]:
                sizes[i] -= 1
                diff += 1
                shrunk = True
        if diff < 0 and not shrunk:  # unreachable: feasibility checked above
            raise ValueError("cannot satisfy min_procs floors within total cores")
    return sizes
