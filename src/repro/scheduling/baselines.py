"""Simple scheduling baselines used throughout the evaluation.

* :func:`data_parallel_scheduler` -- the *data parallel* program version:
  every M-task executes on all available cores, one after another
  (``g = 1`` in every layer).  This version maximises the number of cores
  per collective and is the reference the task-parallel schedules are
  compared against in Figs. 13, 15, 16, 18.
* :func:`max_task_parallel_scheduler` -- one group per independent task
  (``g`` = layer width), exploiting the maximum degree of task
  parallelism.  Fig. 17 shows why this is not automatically best.
* :func:`fixed_group_scheduler` -- a fixed group count ``g`` per layer,
  used for the NPB group-count sweeps of Fig. 17.
"""

from __future__ import annotations

from ..core.costmodel import CostModel
from .layered import LayerBasedScheduler

__all__ = [
    "data_parallel_scheduler",
    "max_task_parallel_scheduler",
    "fixed_group_scheduler",
]


def data_parallel_scheduler(cost: CostModel) -> LayerBasedScheduler:
    """All tasks on all cores, sequentially."""
    return LayerBasedScheduler(cost, candidate_groups=[1], adjust=False)


def max_task_parallel_scheduler(cost: CostModel) -> LayerBasedScheduler:
    """As many concurrent groups as each layer has tasks."""
    return LayerBasedScheduler(
        cost, candidate_groups=[cost.platform.total_cores], adjust=True
    )


def fixed_group_scheduler(cost: CostModel, g: int, adjust: bool = True) -> LayerBasedScheduler:
    """Exactly ``g`` groups in every layer (when feasible)."""
    if g < 1:
        raise ValueError("g must be >= 1")
    return LayerBasedScheduler(cost, candidate_groups=[g], adjust=adjust)
