"""The combined layer-based scheduling algorithm (Algorithm 1).

The scheduler proceeds in three steps (Section 3.2):

1. replace maximal linear chains by single nodes
   (:mod:`repro.scheduling.chains`),
2. partition the contracted graph into layers of independent tasks
   (:mod:`repro.scheduling.layers`),
3. for every layer, try each feasible number ``g`` of equal-sized core
   subsets, assign the layer's tasks to subsets with the modified LPT
   greedy, pick the ``g`` minimising the layer makespan
   ``Tact(g)`` under the symbolic cost ``Tsymb`` and finally *adjust* the
   chosen groups' sizes proportionally to their accumulated sequential
   work (:mod:`repro.scheduling.allocation`).

All decisions use symbolic cores interconnected by the slowest network
level; the separate mapping step (:mod:`repro.mapping`) later pins the
groups to physical cores.  The ``g``-search re-probes ``Tsymb`` heavily;
running the scheduler through the pipeline's
:class:`~repro.core.costmodel.CachedCostEvaluator` memoizes those probes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.costmodel import CostModel
from ..core.graph import TaskGraph
from ..core.schedule import Layer, LayeredSchedule
from ..core.task import MTask
from ..obs import Instrumentation
from .allocation import adjust_group_sizes, equal_partition, lpt_assign_indices
from .base import Scheduler, SchedulingResult
from .chains import contract_chains
from .layers import build_layers

__all__ = ["LayerBasedScheduler"]


@dataclass
class LayerBasedScheduler(Scheduler):
    """Layer-based M-task scheduler with group adjustment.

    Parameters
    ----------
    cost:
        Cost model (binds the target platform).
    contract:
        Contract linear chains first (step 1); disabling this is the
        chain-contraction ablation.
    adjust:
        Apply the group-size adjustment after choosing ``g``.
    assignment:
        ``"lpt"`` (paper) or ``"roundrobin"`` (ablation baseline).
    candidate_groups:
        Restrict the searched group counts.  ``None`` searches every
        feasible ``g``; wide layers (> ``wide_layer_limit`` tasks) fall
        back to powers of two plus the layer width to keep the search
        tractable, matching the group counts the paper sweeps.
    """

    cost: CostModel
    contract: bool = True
    adjust: bool = True
    assignment: str = "lpt"
    candidate_groups: Optional[Sequence[int]] = None
    wide_layer_limit: int = 64

    #: chain handling is part of the algorithm itself (step 1); the
    #: pipeline must not pre-contract, even for the ablation variant.
    handles_contraction = True

    def __post_init__(self) -> None:
        if self.assignment not in ("lpt", "roundrobin"):
            raise ValueError("assignment must be 'lpt' or 'roundrobin'")

    # ------------------------------------------------------------------
    def _candidates(self, n_tasks: int) -> List[int]:
        max_g = min(self.nprocs, n_tasks)
        if self.candidate_groups is not None:
            # clamp requested counts to the layer width (a fixed-g sweep
            # still needs narrow layers, e.g. a lone combine task, to work)
            return sorted({min(max(g, 1), max_g) for g in self.candidate_groups})
        if max_g <= self.wide_layer_limit:
            return list(range(1, max_g + 1))
        cands = {1, max_g}
        g = 2
        while g < max_g:
            cands.add(g)
            g *= 2
        return sorted(cands)

    def _layer_feasible(self, tasks: Sequence[MTask], g: int) -> bool:
        min_size = min(equal_partition(self.nprocs, g))
        return all(t.min_procs <= min_size for t in tasks)

    def _cost_columns(
        self, tasks: Sequence[MTask], feasible: Sequence[int]
    ) -> Tuple[Dict[int, List[float]], int]:
        """Batch-evaluate every ``Tsymb`` column the ``g``-search reads.

        The search probes each task at two kinds of width: the equal
        subset estimate ``P // g`` of every candidate, and the
        ``equal_partition`` sizes of every possible non-empty group count
        (``floor(P/k)`` and its ceiling) -- ``O(sqrt(P) + |candidates|)``
        distinct widths in total.  One ``tsymb_table`` call scores all of
        them; the returned map gives the per-task cost column of each raw
        width as plain Python floats (bitwise equal to scalar ``tsymb``).
        """
        P = self.nprocs
        widths = set()
        for g in feasible:
            widths.add(P // g)
        for k in range(1, max(feasible) + 1):
            base, rem = divmod(P, k)
            widths.add(base)
            if rem:
                widths.add(base + 1)
        ordered = sorted(widths)
        table = self.cost.tsymb_table(tasks, ordered)
        columns = {w: table[:, j].tolist() for j, w in enumerate(ordered)}
        return columns, len(ordered)

    def schedule_layer(
        self, tasks: Sequence[MTask], obs: Optional[Instrumentation] = None
    ) -> Tuple[Layer, float]:
        """Schedule one layer; returns the layer and its ``Tmin``.

        *Decide* and *cost* are split: all symbolic cost columns the
        search can touch are batch-evaluated up front
        (:meth:`_cost_columns`), then the ``g``-search, LPT assignment
        and load maximisation run on plain float lookups without calling
        the cost model again.  Decisions -- including floating-point
        accumulation order and tie-breaks -- are bit-identical to the
        historical scalar implementation.
        """
        obs = obs if obs is not None else Instrumentation()
        P = self.nprocs
        tasks = list(tasks)
        if not tasks:
            # :func:`build_layers` never emits empty layers, but direct
            # callers (adversarial sweeps, reschedule suffixes) may; an
            # empty layer is one idle group spanning the whole machine
            return Layer(groups=[[]], group_sizes=[P]), 0.0
        max_minp = max((t.min_procs for t in tasks), default=1)
        feasible = []
        for g in self._candidates(len(tasks)):
            if g <= 0:
                # matches the scalar path: probing a degenerate group
                # count fails inside equal_partition
                equal_partition(P, g)
            if max_minp <= P // g:  # == _layer_feasible(tasks, g)
                feasible.append(g)
        best: Optional[Tuple[float, int, List[List[int]], List[int]]] = None
        if feasible:
            columns, n_widths = self._cost_columns(tasks, feasible)
            obs.count("gsearch.batch_widths", n_widths)
            n = len(tasks)
            # LPT's task order depends only on the cost column, so one
            # sort per distinct width serves every candidate probing it
            order_cache: Dict[int, List[int]] = {}
        for g in feasible:
            obs.count("gsearch.probes")
            q_est = P // g  # the equal subset size the paper assumes
            est = columns[q_est]
            if self.assignment == "lpt":
                order = order_cache.get(q_est)
                if order is None:
                    order = sorted(range(n), key=lambda i: (-est[i], tasks[i].name))
                    order_cache[q_est] = order
                groups = lpt_assign_indices(order, est, g)
            else:
                groups = [list(range(gi, n, g)) for gi in range(g)]  # roundrobin
            # a candidate g larger than the number of tasks with distinct
            # loads leaves LPT groups empty; drop them *before* costing so
            # their cores widen the real groups instead of idling (the
            # probe then competes on its effective group count)
            nonempty = [grp for grp in groups if grp]
            if len(nonempty) < len(groups):
                obs.count("gsearch.empty_groups", len(groups) - len(nonempty))
                groups = nonempty
            sizes = equal_partition(P, len(groups))
            loads = []
            for gi, grp in enumerate(groups):
                col = columns[sizes[gi]]
                loads.append(sum(map(col.__getitem__, grp)))
            tact = max(loads) if loads else 0.0
            if best is None or tact < best[0] - 1e-15:
                best = (tact, g, groups, sizes)
        if best is None:
            raise ValueError(
                "no feasible group count for layer "
                f"[{', '.join(t.name for t in tasks)}] on {P} cores"
            )
        tact, g, idx_groups, sizes = best
        groups = [[tasks[i] for i in grp] for grp in idx_groups]
        if self.adjust and len(groups) > 1:
            with obs.span("adjust"):
                sizes = adjust_group_sizes(groups, self.cost.sequential_time, self.nprocs)
        return Layer(groups=groups, group_sizes=sizes), tact

    def _plan(self, graph: TaskGraph, obs: Instrumentation) -> SchedulingResult:
        """Run the complete three-step algorithm on an M-task graph."""
        with obs.span("contract"):
            if self.contract:
                work_graph, expansion = contract_chains(graph)
            else:
                work_graph, expansion = graph, {}
        obs.count("contract.chains", len(expansion))
        with obs.span("layers"):
            raw_layers = build_layers(work_graph)
        layers: List[Layer] = []
        with obs.span("gsearch"):
            for i, tasks in enumerate(raw_layers):
                # one same-named span per layer; the unique span ids keep
                # the reconstructed tree unambiguous
                with obs.span("layer", index=i, tasks=len(tasks)):
                    layer, tact = self.schedule_layer(tasks, obs)
                obs.record(
                    "layer",
                    index=i,
                    tasks=len(tasks),
                    groups=layer.num_groups,
                    group_sizes=list(layer.group_sizes),
                    tact=tact,
                )
                obs.observe("gsearch.layer_tact", tact)
                layers.append(layer)
        layered = LayeredSchedule(
            nprocs=self.nprocs,
            layers=layers,
            expansion={k: list(v) for k, v in expansion.items()},
        )
        return SchedulingResult(
            nprocs=self.nprocs,
            scheduler=self.name,
            layered=layered,
            expansion=layered.expansion,
            stats={
                "layers": len(layers),
                "gsearch_probes": obs.counter("gsearch.probes"),
                "contracted_chains": len(expansion),
            },
        )
