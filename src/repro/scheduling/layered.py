"""The combined layer-based scheduling algorithm (Algorithm 1).

The scheduler proceeds in three steps (Section 3.2):

1. replace maximal linear chains by single nodes
   (:mod:`repro.scheduling.chains`),
2. partition the contracted graph into layers of independent tasks
   (:mod:`repro.scheduling.layers`),
3. for every layer, try each feasible number ``g`` of equal-sized core
   subsets, assign the layer's tasks to subsets with the modified LPT
   greedy, pick the ``g`` minimising the layer makespan
   ``Tact(g)`` under the symbolic cost ``Tsymb`` and finally *adjust* the
   chosen groups' sizes proportionally to their accumulated sequential
   work (:mod:`repro.scheduling.allocation`).

All decisions use symbolic cores interconnected by the slowest network
level; the separate mapping step (:mod:`repro.mapping`) later pins the
groups to physical cores.  The ``g``-search re-probes ``Tsymb`` heavily;
running the scheduler through the pipeline's
:class:`~repro.core.costmodel.CachedCostEvaluator` memoizes those probes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.costmodel import CostModel
from ..core.graph import TaskGraph
from ..core.schedule import Layer, LayeredSchedule
from ..core.task import MTask
from ..obs import Instrumentation
from .allocation import adjust_group_sizes, equal_partition, lpt_assign, round_robin_assign
from .base import Scheduler, SchedulingResult
from .chains import contract_chains
from .layers import build_layers

__all__ = ["LayerBasedScheduler"]


@dataclass
class LayerBasedScheduler(Scheduler):
    """Layer-based M-task scheduler with group adjustment.

    Parameters
    ----------
    cost:
        Cost model (binds the target platform).
    contract:
        Contract linear chains first (step 1); disabling this is the
        chain-contraction ablation.
    adjust:
        Apply the group-size adjustment after choosing ``g``.
    assignment:
        ``"lpt"`` (paper) or ``"roundrobin"`` (ablation baseline).
    candidate_groups:
        Restrict the searched group counts.  ``None`` searches every
        feasible ``g``; wide layers (> ``wide_layer_limit`` tasks) fall
        back to powers of two plus the layer width to keep the search
        tractable, matching the group counts the paper sweeps.
    """

    cost: CostModel
    contract: bool = True
    adjust: bool = True
    assignment: str = "lpt"
    candidate_groups: Optional[Sequence[int]] = None
    wide_layer_limit: int = 64

    #: chain handling is part of the algorithm itself (step 1); the
    #: pipeline must not pre-contract, even for the ablation variant.
    handles_contraction = True

    def __post_init__(self) -> None:
        if self.assignment not in ("lpt", "roundrobin"):
            raise ValueError("assignment must be 'lpt' or 'roundrobin'")

    # ------------------------------------------------------------------
    def _assign(self, tasks, time_of, g):
        fn = lpt_assign if self.assignment == "lpt" else round_robin_assign
        return fn(tasks, time_of, g)

    def _candidates(self, n_tasks: int) -> List[int]:
        max_g = min(self.nprocs, n_tasks)
        if self.candidate_groups is not None:
            # clamp requested counts to the layer width (a fixed-g sweep
            # still needs narrow layers, e.g. a lone combine task, to work)
            return sorted({min(max(g, 1), max_g) for g in self.candidate_groups})
        if max_g <= self.wide_layer_limit:
            return list(range(1, max_g + 1))
        cands = {1, max_g}
        g = 2
        while g < max_g:
            cands.add(g)
            g *= 2
        return sorted(cands)

    def _layer_feasible(self, tasks: Sequence[MTask], g: int) -> bool:
        min_size = min(equal_partition(self.nprocs, g))
        return all(t.min_procs <= min_size for t in tasks)

    def schedule_layer(
        self, tasks: Sequence[MTask], obs: Optional[Instrumentation] = None
    ) -> Tuple[Layer, float]:
        """Schedule one layer; returns the layer and its ``Tmin``."""
        obs = obs if obs is not None else Instrumentation()
        P = self.nprocs
        best: Optional[Tuple[float, int, List[List[MTask]], List[int]]] = None
        for g in self._candidates(len(tasks)):
            if not self._layer_feasible(tasks, g):
                continue
            obs.count("gsearch.probes")
            q_est = P // g  # the equal subset size the paper assumes
            time_of = lambda t, q=q_est: self.cost.tsymb(t, t.clamp_procs(max(q, t.min_procs)))
            groups = self._assign(tasks, time_of, g)
            # a candidate g larger than the number of tasks with distinct
            # loads leaves LPT groups empty; drop them *before* costing so
            # their cores widen the real groups instead of idling (the
            # probe then competes on its effective group count)
            nonempty = [grp for grp in groups if grp]
            if len(nonempty) < len(groups):
                obs.count("gsearch.empty_groups", len(groups) - len(nonempty))
                groups = nonempty
            sizes = equal_partition(P, len(groups))
            loads = []
            for gi, grp in enumerate(groups):
                q = sizes[gi]
                loads.append(
                    sum(self.cost.tsymb(t, t.clamp_procs(max(q, t.min_procs))) for t in grp)
                )
            tact = max(loads) if loads else 0.0
            if best is None or tact < best[0] - 1e-15:
                best = (tact, g, groups, sizes)
        if best is None:
            raise ValueError(
                "no feasible group count for layer "
                f"[{', '.join(t.name for t in tasks)}] on {P} cores"
            )
        tact, g, groups, sizes = best
        if self.adjust and len(groups) > 1:
            with obs.span("adjust"):
                sizes = adjust_group_sizes(groups, self.cost.sequential_time, self.nprocs)
        return Layer(groups=groups, group_sizes=sizes), tact

    def _plan(self, graph: TaskGraph, obs: Instrumentation) -> SchedulingResult:
        """Run the complete three-step algorithm on an M-task graph."""
        with obs.span("contract"):
            if self.contract:
                work_graph, expansion = contract_chains(graph)
            else:
                work_graph, expansion = graph, {}
        obs.count("contract.chains", len(expansion))
        with obs.span("layers"):
            raw_layers = build_layers(work_graph)
        layers: List[Layer] = []
        with obs.span("gsearch"):
            for i, tasks in enumerate(raw_layers):
                # one same-named span per layer; the unique span ids keep
                # the reconstructed tree unambiguous
                with obs.span("layer", index=i, tasks=len(tasks)):
                    layer, tact = self.schedule_layer(tasks, obs)
                obs.record(
                    "layer",
                    index=i,
                    tasks=len(tasks),
                    groups=layer.num_groups,
                    group_sizes=list(layer.group_sizes),
                    tact=tact,
                )
                obs.observe("gsearch.layer_tact", tact)
                layers.append(layer)
        layered = LayeredSchedule(
            nprocs=self.nprocs,
            layers=layers,
            expansion={k: list(v) for k, v in expansion.items()},
        )
        return SchedulingResult(
            nprocs=self.nprocs,
            scheduler=self.name,
            layered=layered,
            expansion=layered.expansion,
            stats={
                "layers": len(layers),
                "gsearch_probes": obs.counter("gsearch.probes"),
                "contracted_chains": len(expansion),
            },
        )
