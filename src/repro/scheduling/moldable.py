"""Dual-approximation scheduling of moldable tasks (after Wu & Loiseau).

Competitor scheduler of the shoot-out harness: the classic
dual-approximation scheme for *independent* moldable tasks, applied
layer by layer to an M-task graph.  For one layer of independent tasks
on ``P`` symbolic cores:

1. binary-search a makespan guess ``theta``;
2. for each task pick the *canonical allotment* -- the smallest feasible
   width whose ``Tsymb`` fits under ``theta`` (no such width rejects the
   guess);
3. accept ``theta`` when the canonical allotments also satisfy the area
   bound ``sum_t w_t * Tsymb(t, w_t) <= P * theta``;
4. pack the accepted allotments with an LPT list schedule onto the
   concrete cores (longest task first, each onto the cores that free up
   earliest).

Layers are separated by barriers (every predecessor lives in a strictly
earlier layer, so the resulting timeline is precedence-clean by
construction); re-distribution between layers is not charged, mirroring
the symbolic view the layered scheduler plans with.  The per-layer cost
table is batch-evaluated once (:meth:`~repro.core.costmodel.CostModel.
tsymb_table`), so each ``theta`` probe is a vectorized scan rather than
``O(n * P)`` scalar cost calls.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..core.costmodel import CostModel
from ..core.graph import TaskGraph
from ..core.schedule import Schedule, ScheduledTask
from ..core.task import MTask
from ..obs import Instrumentation
from .base import Scheduler, SchedulingResult
from .layers import build_layers

__all__ = ["MoldableLayerScheduler"]


@dataclass
class MoldableLayerScheduler(Scheduler):
    """Layer-wise dual-approximation scheduler for moldable M-tasks.

    Parameters
    ----------
    cost:
        Cost model (binds the target platform).
    iterations:
        Binary-search steps on the per-layer makespan guess; 24 narrows
        the bracket by a factor of ``2**24``, far below cost-model noise.
    """

    cost: CostModel
    iterations: int = 24

    # ------------------------------------------------------------------
    def _layer_widths(
        self, tasks: Sequence[MTask], obs: Instrumentation
    ) -> Tuple[List[int], List[float]]:
        """Canonical allotments of one layer via dual approximation.

        Returns the chosen width and execution time per task (in the
        given task order).
        """
        P = self.nprocs
        for t in tasks:
            if t.min_procs > P:
                raise ValueError(
                    f"task {t.name!r}: min_procs={t.min_procs} exceeds the "
                    f"{P}-core platform"
                )
        widths = list(range(1, P + 1))
        table = np.asarray(self.cost.tsymb_table(tasks, widths), dtype=float)
        # mask widths outside each task's moldability bounds
        cols = np.arange(1, P + 1)
        lo = np.array([t.min_procs for t in tasks])[:, None]
        hi = np.array(
            [t.max_procs if t.max_procs is not None else P for t in tasks]
        )[:, None]
        infeasible = (cols[None, :] < lo) | (cols[None, :] > hi)
        masked = np.where(infeasible, np.inf, table)

        def canonical(theta: float):
            """Smallest feasible width with ``Tsymb <= theta`` per task
            (or -1), plus the area of the resulting allotment."""
            fits = masked <= theta
            any_fit = fits.any(axis=1)
            first = np.where(any_fit, fits.argmax(axis=1), -1)
            ok = bool(any_fit.all())
            if not ok:
                return first, np.inf, False
            w = first + 1  # column j is width j+1
            t_of = masked[np.arange(len(tasks)), first]
            area = float((w * t_of).sum())
            return first, area, area <= P * theta + 1e-12

        # bracket: the best-width makespan / per-core area are lower
        # bounds; serialising every task at its minimal width is feasible
        tmin = float(masked.min(axis=1).max()) if len(tasks) else 0.0
        area_min = float((cols[None, :] * masked).min(axis=1).sum())
        lo_theta = max(tmin, area_min / P)
        min_first = (~infeasible).argmax(axis=1)
        t_at_min = masked[np.arange(len(tasks)), min_first]
        hi_theta = max(lo_theta, float(t_at_min.sum()))
        best = None
        for _ in range(8):  # widen until feasible (zero-work layers: 1 pass)
            first, _, ok = canonical(hi_theta)
            obs.count("moldable.theta_probes")
            if ok:
                best = first
                break
            hi_theta = max(hi_theta * 2.0, 1e-9)
        if best is None:
            raise ValueError(
                "dual approximation found no feasible allotment for layer "
                f"[{', '.join(t.name for t in tasks)}] on {P} cores"
            )
        for _ in range(self.iterations):
            mid = 0.5 * (lo_theta + hi_theta)
            first, _, ok = canonical(mid)
            obs.count("moldable.theta_probes")
            if ok:
                best, hi_theta = first, mid
            else:
                lo_theta = mid
        w = (best + 1).tolist()
        t_of = masked[np.arange(len(tasks)), best].tolist()
        return w, t_of

    # ------------------------------------------------------------------
    def _plan(self, graph: TaskGraph, obs: Instrumentation) -> SchedulingResult:
        """Allot and pack every layer, separated by barriers."""
        P = self.nprocs
        with obs.span("layers"):
            raw_layers = build_layers(graph)
        avail = [0.0] * P
        schedule = Schedule(P)
        allocation: Dict[MTask, int] = {}
        t_layer = 0.0
        with obs.span("dual_approx", layers=len(raw_layers)):
            for li, tasks in enumerate(raw_layers):
                tasks = sorted(tasks, key=lambda t: t.name)
                with obs.span("layer", index=li, tasks=len(tasks)):
                    widths, times = self._layer_widths(tasks, obs)
                # LPT packing: longest task first onto the earliest-free
                # cores, never before the layer barrier
                order = sorted(
                    range(len(tasks)), key=lambda i: (-times[i], tasks[i].name)
                )
                layer_end = t_layer
                for i in order:
                    t, q = tasks[i], widths[i]
                    core_order = sorted(range(P), key=lambda c: (avail[c], c))
                    chosen = tuple(sorted(core_order[:q]))
                    start = max(t_layer, max(avail[c] for c in chosen))
                    end = start + times[i]
                    for c in chosen:
                        avail[c] = end
                    schedule.add(ScheduledTask(t, start, end, chosen))
                    allocation[t] = q
                    layer_end = max(layer_end, end)
                t_layer = layer_end
                avail = [t_layer] * P  # barrier between layers
        return SchedulingResult(
            nprocs=P,
            scheduler=self.name,
            timeline=schedule,
            allocation=allocation,
            stats={
                "layers": float(len(raw_layers)),
                "theta_probes": float(obs.counter("moldable.theta_probes")),
            },
        )
