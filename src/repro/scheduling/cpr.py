"""CPR -- Critical Path Reduction (Radulescu et al., 2001).

Comparison baseline of Section 4.3.  Unlike CPA, CPR interleaves
allocation and scheduling: starting from one core per task it repeatedly
tries to widen a task by one core, re-runs the full list scheduler, and
keeps the widening only when the resulting makespan improves.  Candidates
are drawn from the current critical path in decreasing gain order, which
is why CPR tends to pour cores into the longest linear chain -- for the
extrapolation method this produces the near-data-parallel schedules with
the poor performance seen in Fig. 13 (right).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..core.costmodel import CostModel
from ..core.graph import TaskGraph
from ..core.schedule import Schedule
from ..core.task import MTask
from ..obs import Instrumentation
from .base import Scheduler, SchedulingResult
from .listsched import list_schedule

__all__ = ["CPRScheduler"]


@dataclass
class CPRScheduler(Scheduler):
    """The CPR one-phase (coupled) M-task scheduler."""

    cost: CostModel
    max_increments: int = 50_000
    tolerance: float = 1e-12
    #: cores added per widening attempt; > 1 coarsens the search on large
    #: machines (a performance knob, not part of the original algorithm)
    granularity: int = 1

    def _plan(self, graph: TaskGraph, obs: Instrumentation) -> SchedulingResult:
        with obs.span("widen"):
            timeline, alloc = self.schedule_with_allocation(graph)
        return SchedulingResult(
            nprocs=self.nprocs,
            scheduler=self.name,
            timeline=timeline,
            allocation=alloc,
            stats={"allocated_cores": float(sum(alloc.values()))},
        )

    @staticmethod
    def _objective(schedule: Schedule) -> Tuple[float, float]:
        """Primary: makespan.  Secondary: sum of finish times.

        The secondary criterion lets CPR cross the plateaus that occur
        with symmetric independent tasks (a single widening shortens one
        task but not the layer); without it the search would stall at the
        one-core-per-task allocation.
        """
        return (schedule.makespan, sum(e.finish for e in schedule.entries))

    def schedule_with_allocation(
        self, graph: TaskGraph
    ) -> Tuple[Schedule, Dict[MTask, int]]:
        """Schedule the graph and return the final allocation too."""
        P = self.cost.platform.total_cores
        step = max(1, self.granularity)
        alloc: Dict[MTask, int] = {t: t.min_procs for t in graph}
        best = list_schedule(graph, alloc, self.cost)
        best_obj = self._objective(best)
        increments = 0
        improved = True
        while improved and increments < self.max_increments:
            improved = False
            times = {t: self.cost.tsymb(t, alloc[t]) for t in graph}
            path = graph.critical_path(times)

            def gain(t: MTask) -> float:
                trial = min(t.clamp_procs(P), alloc[t] + step)
                return times[t] - self.cost.tsymb(t, trial)

            # critical-path tasks first (largest gain first), then the rest
            on_path = sorted(
                (t for t in path if alloc[t] < t.clamp_procs(P)),
                key=lambda t: -gain(t),
            )
            in_path = set(path)
            rest = sorted(
                (t for t in graph if t not in in_path and alloc[t] < t.clamp_procs(P)),
                key=lambda t: -gain(t),
            )
            for t in on_path + rest:
                old = alloc[t]
                alloc[t] = min(t.clamp_procs(P), old + step)
                increments += 1
                trial = list_schedule(graph, alloc, self.cost)
                trial_obj = self._objective(trial)
                if trial_obj[0] < best_obj[0] - self.tolerance or (
                    trial_obj[0] < best_obj[0] + self.tolerance
                    and trial_obj[1] < best_obj[1] - self.tolerance
                ):
                    best, best_obj = trial, trial_obj
                    improved = True
                    break  # restart from the new critical path
                alloc[t] = old
                if increments >= self.max_increments:
                    break
        return best, alloc
