"""Dynamic M-task scheduling (Section 2.2.2).

The paper's static algorithm needs the whole M-task graph up front.  For
adaptive computations and divide-and-conquer algorithms it points to
*dynamic* scheduling in the style of the Tlib library [44]: subsets of
cores are assigned to M-tasks at runtime, depending on the availability
of free cores, and tasks may create further M-tasks recursively while
the program runs.

:class:`DynamicScheduler` implements that execution model on top of the
simulation kernel:

* a task becomes *ready* when the tasks it depends on have finished;
* ready tasks wait in a priority queue (longest sequential work first,
  ties by submission order);
* when cores free up, the dispatcher grants the head of the queue a
  group of free cores -- its preferred width if available, any feasible
  remainder otherwise (moldability at work);
* a running task may submit new tasks (``spawn``) with dependencies on
  other dynamic tasks, enabling recursive decomposition.

The result is an :class:`~repro.sim.trace.ExecutionTrace` like the static
pipeline produces, so dynamic and static schedules can be compared
directly (see ``examples/divide_and_conquer.py``).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from ..cluster.architecture import CoreId
from ..core.costmodel import CostModel
from ..core.graph import TaskGraph
from ..core.task import MTask
from ..obs import Instrumentation
from ..sim.engine import Simulator
from ..sim.trace import ExecutionTrace, TraceEntry
from .base import Scheduler, SchedulingResult

__all__ = ["DynamicTask", "DynamicScheduler", "SpawnContext"]


@dataclass(eq=False)
class DynamicTask:
    """A task submitted to the dynamic scheduler.

    ``preferred_width`` is the core count the task would like; the
    dispatcher may grant fewer (down to ``task.min_procs``) when the
    machine is busy.  ``on_start`` runs when the task is dispatched and
    may spawn further tasks through the provided :class:`SpawnContext`.
    """

    task: MTask
    deps: Tuple["DynamicTask", ...] = ()
    preferred_width: Optional[int] = None
    on_start: Optional[Callable[["SpawnContext"], None]] = None
    #: filled in by the scheduler
    _remaining: int = field(default=0, repr=False)
    _submitted: int = field(default=0, repr=False)


class SpawnContext:
    """Handed to a task's ``on_start`` hook to submit child tasks."""

    def __init__(self, scheduler: "DynamicScheduler", parent: DynamicTask) -> None:
        self._scheduler = scheduler
        self.parent = parent

    def spawn(
        self,
        task: MTask,
        deps: Sequence[DynamicTask] = (),
        preferred_width: Optional[int] = None,
        on_start: Optional[Callable[["SpawnContext"], None]] = None,
    ) -> DynamicTask:
        """Submit a new task from inside a running task."""
        # children implicitly depend on their parent (its inputs exist)
        all_deps = tuple(deps) + (self.parent,)
        return self._scheduler.submit(
            task, deps=all_deps, preferred_width=preferred_width, on_start=on_start
        )


class DynamicScheduler(Scheduler):
    """Runtime scheduler with dynamic task creation.

    Usage::

        dyn = DynamicScheduler(cost)
        root = dyn.submit(task, on_start=decompose)   # decompose spawns more
        trace = dyn.run()

    A *static* graph can also be handed to :meth:`schedule` (the common
    :class:`~repro.scheduling.base.Scheduler` contract): every task is
    submitted with its graph dependencies and the run's trace is returned
    inside the :class:`~repro.scheduling.base.SchedulingResult`, making
    dynamic and static scheduling directly comparable through the
    pipeline.
    """

    #: dynamic dispatch works on the original tasks; no contraction.
    handles_contraction = True

    def __init__(self, cost: CostModel) -> None:
        self.cost = cost
        self.machine = cost.platform.machine
        self._sim = Simulator()
        self._free: List[CoreId] = list(self.machine.cores())
        self._ready: List[Tuple[float, int, DynamicTask]] = []
        self._counter = itertools.count()
        self._pending: Set[DynamicTask] = set()
        self._running: Set[DynamicTask] = set()
        self._done: Set[DynamicTask] = set()
        self._waiters: Dict[DynamicTask, List[DynamicTask]] = {}
        self._trace = ExecutionTrace(self.machine)
        self._ran = False

    # ------------------------------------------------------------------
    def submit(
        self,
        task: MTask,
        deps: Sequence[DynamicTask] = (),
        preferred_width: Optional[int] = None,
        on_start: Optional[Callable[[SpawnContext], None]] = None,
    ) -> DynamicTask:
        """Submit a task; may be called before or during :meth:`run`."""
        dyn = DynamicTask(
            task=task,
            deps=tuple(deps),
            preferred_width=preferred_width,
            on_start=on_start,
        )
        dyn._submitted = next(self._counter)
        open_deps = [d for d in dyn.deps if d not in self._done]
        dyn._remaining = len(open_deps)
        for d in open_deps:
            if d in self._trace or d in self._done:
                continue
            self._waiters.setdefault(d, []).append(dyn)
        self._pending.add(dyn)
        if dyn._remaining == 0:
            self._enqueue(dyn)
        return dyn

    def _enqueue(self, dyn: DynamicTask) -> None:
        # longest sequential work first; FIFO among equals
        prio = (-dyn.task.work, dyn._submitted)
        heapq.heappush(self._ready, (prio[0], prio[1], dyn))
        self._sim.at(self._sim.now, self._dispatch)

    # ------------------------------------------------------------------
    def _grant_width(self, dyn: DynamicTask) -> Optional[int]:
        free = len(self._free)
        want = dyn.preferred_width or dyn.task.clamp_procs(self.machine.total_cores)
        want = dyn.task.clamp_procs(max(want, dyn.task.min_procs))
        if free >= want:
            return want
        if free >= dyn.task.min_procs:
            return dyn.task.clamp_procs(free)
        return None

    def _dispatch(self) -> None:
        # grant cores to ready tasks in priority order; a task that does
        # not fit blocks lower-priority tasks from jumping far ahead only
        # if even its minimum width is unavailable
        deferred: List[Tuple[float, int, DynamicTask]] = []
        while self._ready:
            key = heapq.heappop(self._ready)
            dyn = key[2]
            width = self._grant_width(dyn)
            if width is None:
                deferred.append(key)
                break  # nothing smaller will run before cores free up
            cores = tuple(self._free[:width])
            del self._free[:width]
            self._start(dyn, cores)
        for key in deferred:
            heapq.heappush(self._ready, key)

    def _start(self, dyn: DynamicTask, cores: Tuple[CoreId, ...]) -> None:
        self._pending.discard(dyn)
        self._running.add(dyn)
        if dyn.on_start is not None:
            dyn.on_start(SpawnContext(self, dyn))
        comp = self.cost.tcomp_mapped(dyn.task, cores)
        comm = self.cost.tcomm_mapped(dyn.task, cores)
        start = self._sim.now
        finish = start + comp + comm
        self._trace.add(
            TraceEntry(
                task=dyn.task,
                start=start,
                finish=finish,
                cores=cores,
                comp_time=comp,
                comm_time=comm,
                redist_wait=0.0,
            )
        )
        self._sim.at(finish, lambda: self._complete(dyn, cores))

    def _complete(self, dyn: DynamicTask, cores: Tuple[CoreId, ...]) -> None:
        self._running.discard(dyn)
        self._done.add(dyn)
        self._free.extend(cores)
        self._free.sort()
        for waiter in self._waiters.pop(dyn, []):
            waiter._remaining -= 1
            if waiter._remaining == 0:
                self._enqueue(waiter)
        self._dispatch()

    # ------------------------------------------------------------------
    def _plan(self, graph: TaskGraph, obs: Instrumentation) -> SchedulingResult:
        """Dispatch a static graph dynamically (one-shot per instance)."""
        if self._ran:
            raise RuntimeError(
                "a DynamicScheduler instance runs only once; create a fresh "
                "one per schedule() call"
            )
        handles: Dict[MTask, DynamicTask] = {}
        for t in graph.topological_order():
            deps = tuple(handles[p] for p in graph.predecessors(t))
            handles[t] = self.submit(t, deps=deps)
        with obs.span("dispatch"):
            trace = self.run()
        obs.count("dynamic.tasks", len(trace))
        return SchedulingResult(
            nprocs=self.nprocs,
            scheduler=self.name,
            trace=trace,
            stats={"tasks": float(len(trace))},
        )

    # ------------------------------------------------------------------
    def run(self) -> ExecutionTrace:
        """Process the submitted (and recursively spawned) tasks."""
        if self._ran:
            raise RuntimeError("a DynamicScheduler instance runs only once")
        self._ran = True
        self._sim.at(0.0, self._dispatch)
        self._sim.run()
        if self._pending or self._running:
            stuck = [d.task.name for d in self._pending | self._running]
            raise RuntimeError(
                f"dynamic schedule deadlocked; unfinished tasks: {stuck}"
            )
        return self._trace
