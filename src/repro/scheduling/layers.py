"""Greedy layer decomposition (step 2 of Algorithm 1).

A breadth-first greedy pass partitions the (chain-contracted) M-task
graph into consecutive *layers* of pairwise independent tasks: a task
joins the earliest layer that already contains all of its predecessors'
layers strictly before it.  The greedy rule "put as many independent
nodes as possible into the current layer" is equivalent to grouping tasks
by their longest-path depth from the sources, which is what the paper's
shrinking-wavefront illustration (Fig. 5 right) shows.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.graph import TaskGraph
from ..core.task import MTask

__all__ = ["build_layers", "layer_index"]


def layer_index(graph: TaskGraph) -> Dict[MTask, int]:
    """Layer number of every task (longest-path depth from the sources).

    One pass over a prebuilt predecessor index -- strictly O(V + E),
    no per-task adjacency tuples.
    """
    preds = graph.predecessor_index()
    depth: Dict[MTask, int] = {}
    for t in graph.topological_order():
        ps = preds[t]
        depth[t] = 1 + max(depth[p] for p in ps) if ps else 0
    return depth


def build_layers(graph: TaskGraph) -> List[List[MTask]]:
    """Partition the graph into layers of independent tasks.

    Tasks within a returned layer are pairwise independent by
    construction; layers are ordered so that all dependencies point from
    earlier to later layers.  O(V + E): one :func:`layer_index` pass
    plus one bucketing pass in topological order (which fixes the
    within-layer task order the rest of the scheduler depends on).
    """
    order = graph.topological_order()
    if not order:
        return []
    preds = graph.predecessor_index()
    depth: Dict[MTask, int] = {}
    nlayers = 0
    for t in order:
        ps = preds[t]
        d = 1 + max(depth[p] for p in ps) if ps else 0
        depth[t] = d
        if d + 1 > nlayers:
            nlayers = d + 1
    layers: List[List[MTask]] = [[] for _ in range(nlayers)]
    for t in order:
        layers[depth[t]].append(t)
    return layers
