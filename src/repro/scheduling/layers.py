"""Greedy layer decomposition (step 2 of Algorithm 1).

A breadth-first greedy pass partitions the (chain-contracted) M-task
graph into consecutive *layers* of pairwise independent tasks: a task
joins the earliest layer that already contains all of its predecessors'
layers strictly before it.  The greedy rule "put as many independent
nodes as possible into the current layer" is equivalent to grouping tasks
by their longest-path depth from the sources, which is what the paper's
shrinking-wavefront illustration (Fig. 5 right) shows.
"""

from __future__ import annotations

from typing import Dict, List

from ..core.graph import TaskGraph
from ..core.task import MTask

__all__ = ["build_layers", "layer_index"]


def layer_index(graph: TaskGraph) -> Dict[MTask, int]:
    """Layer number of every task (longest-path depth from the sources)."""
    depth: Dict[MTask, int] = {}
    for t in graph.topological_order():
        preds = graph.predecessors(t)
        depth[t] = 0 if not preds else 1 + max(depth[p] for p in preds)
    return depth


def build_layers(graph: TaskGraph) -> List[List[MTask]]:
    """Partition the graph into layers of independent tasks.

    Tasks within a returned layer are pairwise independent by
    construction; layers are ordered so that all dependencies point from
    earlier to later layers.
    """
    depth = layer_index(graph)
    if not depth:
        return []
    layers: List[List[MTask]] = [[] for _ in range(max(depth.values()) + 1)]
    for t in graph.topological_order():
        layers[depth[t]].append(t)
    return layers
