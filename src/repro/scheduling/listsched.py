"""List scheduling of M-task graphs with fixed per-task allocations.

Shared scheduling phase of the CPA and CPR baselines: given an allocation
``q_t`` for every task, tasks are dispatched in decreasing bottom-level
order; each task takes the ``q_t`` symbolic cores that become free
earliest and starts when both its cores and its input data (predecessor
finish plus symbolic re-distribution) are available.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..core.costmodel import CostModel
from ..core.graph import TaskGraph
from ..core.schedule import Schedule, ScheduledTask
from ..core.task import MTask

__all__ = ["bottom_levels", "list_schedule"]


def bottom_levels(graph: TaskGraph, times: Dict[MTask, float]) -> Dict[MTask, float]:
    """Bottom level (length of the longest path to a sink) per task."""
    bl: Dict[MTask, float] = {}
    for t in reversed(graph.topological_order()):
        succ = graph.successors(t)
        bl[t] = times[t] + (max(bl[s] for s in succ) if succ else 0.0)
    return bl


def list_schedule(
    graph: TaskGraph,
    alloc: Dict[MTask, int],
    cost: CostModel,
    include_redistribution: bool = True,
) -> Schedule:
    """Earliest-finish list scheduling under a fixed allocation."""
    P = cost.platform.total_cores
    times = {t: cost.tsymb(t, alloc[t]) for t in graph}
    bl = bottom_levels(graph, times)

    avail = [0.0] * P  # per symbolic core: time it becomes free
    finish: Dict[MTask, float] = {}
    cores_of: Dict[MTask, tuple] = {}
    scheduled: Set[MTask] = set()
    schedule = Schedule(P)

    pending = set(graph.tasks)
    while pending:
        ready = [
            t for t in pending if all(p in scheduled for p in graph.predecessors(t))
        ]
        if not ready:
            raise AssertionError("dependency deadlock in list scheduling")
        # highest bottom level first; name breaks ties deterministically
        t = min(ready, key=lambda x: (-bl[x], x.name))
        q = alloc[t]
        if not 1 <= q <= P:
            raise ValueError(f"allocation of {t.name!r} is {q}, outside [1, {P}]")
        # the q cores that free up earliest
        order = sorted(range(P), key=lambda c: (avail[c], c))
        chosen = tuple(sorted(order[:q]))
        core_ready = max(avail[c] for c in chosen)
        data_ready = 0.0
        for p in graph.predecessors(t):
            arrival = finish[p]
            if include_redistribution and set(cores_of[p]) != set(chosen):
                flows = graph.flows(p, t)
                arrival += cost.redistribution_time_symbolic(flows, alloc[p], q)
            data_ready = max(data_ready, arrival)
        start = max(core_ready, data_ready)
        end = start + times[t]
        for c in chosen:
            avail[c] = end
        finish[t] = end
        cores_of[t] = chosen
        schedule.add(ScheduledTask(t, start, end, chosen))
        scheduled.add(t)
        pending.discard(t)
    return schedule
