"""AMTHA-style task-to-core mapping (after De Giusti et al.).

Competitor scheduler of the shoot-out harness: the Automatic Mapping
Task on Heterogeneous Architectures heuristic assigns each task a fixed,
narrow core allotment and dispatches tasks one at a time in decreasing
*rank* order, where the rank of a task is its execution time plus the
most expensive communication-inclusive path to a sink.  Adapted to
M-tasks and symbolic cores:

* each task runs at its *minimal* feasible width (``width="min"``, the
  default -- AMTHA maps tasks to single processors; ``width="best"``
  instead picks the ``Tsymb``-optimal width per task, a moldable
  variant),
* the rank includes the symbolic re-distribution cost on every edge, so
  communication-heavy paths are prioritised -- this is what separates
  AMTHA's dispatch order from the comm-free bottom levels of
  :mod:`repro.scheduling.listsched`,
* dispatch assigns the highest-ranked ready task to the cores that
  become free earliest; the start time honours both core availability
  and data arrival (predecessor finish plus re-distribution whenever
  the core sets differ).

The narrow allotments make AMTHA strong on graphs with much task
parallelism and little per-task scalability, and weak when a layer's
width is far below the core count -- exactly the contrast the shoot-out
measures against the paper's g-search.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..core.costmodel import CostModel
from ..core.graph import TaskGraph
from ..core.schedule import Schedule, ScheduledTask
from ..core.task import MTask
from ..obs import Instrumentation
from .base import Scheduler, SchedulingResult

__all__ = ["AMTHAScheduler"]


@dataclass
class AMTHAScheduler(Scheduler):
    """AMTHA-style rank-and-dispatch scheduler for M-task graphs.

    Parameters
    ----------
    cost:
        Cost model (binds the target platform).
    width:
        Per-task allotment policy: ``"min"`` (each task at its
        ``min_procs``, the faithful adaptation) or ``"best"`` (each task
        at its ``Tsymb``-optimal width, a moldable variant).
    """

    cost: CostModel
    width: str = "min"

    def __post_init__(self) -> None:
        if self.width not in ("min", "best"):
            raise ValueError("width must be 'min' or 'best'")

    # ------------------------------------------------------------------
    def _widths(self, graph: TaskGraph) -> Dict[MTask, int]:
        """Fixed per-task core allotment under the width policy."""
        P = self.nprocs
        widths: Dict[MTask, int] = {}
        for t in graph:
            if t.min_procs > P:
                raise ValueError(
                    f"task {t.name!r}: min_procs={t.min_procs} exceeds the "
                    f"{P}-core platform"
                )
            if self.width == "best":
                widths[t] = self.cost.best_symbolic_width(t, t.clamp_procs(P))
            else:
                widths[t] = t.min_procs
        return widths

    def _ranks(
        self, graph: TaskGraph, widths: Dict[MTask, int]
    ) -> Tuple[Dict[MTask, float], Dict[MTask, float]]:
        """Communication-inclusive upward rank and execution time per task."""
        times = {t: self.cost.tsymb(t, widths[t]) for t in graph}
        rank: Dict[MTask, float] = {}
        for t in reversed(graph.topological_order()):
            tail = 0.0
            for s in graph.successors(t):
                comm = self.cost.redistribution_time_symbolic(
                    graph.flows(t, s), widths[t], widths[s]
                )
                tail = max(tail, comm + rank[s])
            rank[t] = times[t] + tail
        return rank, times

    # ------------------------------------------------------------------
    def _plan(self, graph: TaskGraph, obs: Instrumentation) -> SchedulingResult:
        """Rank every task, then dispatch ready tasks in rank order."""
        P = self.nprocs
        with obs.span("rank"):
            widths = self._widths(graph)
            rank, times = self._ranks(graph, widths)

        avail = [0.0] * P  # per symbolic core: time it becomes free
        finish: Dict[MTask, float] = {}
        cores_of: Dict[MTask, tuple] = {}
        schedule = Schedule(P)

        remaining = {t: len(graph.predecessors(t)) for t in graph}
        # max-heap on rank; the name tie-break keeps dispatch deterministic
        ready: List[Tuple[float, str, MTask]] = [
            (-rank[t], t.name, t) for t, deg in remaining.items() if deg == 0
        ]
        heapq.heapify(ready)
        with obs.span("dispatch", tasks=len(graph)):
            while ready:
                _, _, t = heapq.heappop(ready)
                q = widths[t]
                order = sorted(range(P), key=lambda c: (avail[c], c))
                chosen = tuple(sorted(order[:q]))
                core_ready = max(avail[c] for c in chosen)
                data_ready = 0.0
                for p in graph.predecessors(t):
                    arrival = finish[p]
                    if set(cores_of[p]) != set(chosen):
                        arrival += self.cost.redistribution_time_symbolic(
                            graph.flows(p, t), widths[p], q
                        )
                    data_ready = max(data_ready, arrival)
                start = max(core_ready, data_ready)
                end = start + times[t]
                for c in chosen:
                    avail[c] = end
                finish[t] = end
                cores_of[t] = chosen
                schedule.add(ScheduledTask(t, start, end, chosen))
                obs.count("amtha.dispatched")
                for s in graph.successors(t):
                    remaining[s] -= 1
                    if remaining[s] == 0:
                        heapq.heappush(ready, (-rank[s], s.name, s))
        if len(finish) != len(graph):
            raise AssertionError("dependency deadlock in AMTHA dispatch")
        return SchedulingResult(
            nprocs=P,
            scheduler=self.name,
            timeline=schedule,
            allocation=dict(widths),
            stats={
                "tasks": float(len(graph)),
                "mean_width": (
                    sum(widths.values()) / len(widths) if widths else 0.0
                ),
            },
        )
