"""Scheduler interface and symbolic-timeline utilities."""

from __future__ import annotations

from typing import List, Protocol, Union

from ..core.costmodel import CostModel
from ..core.graph import TaskGraph
from ..core.schedule import LayeredSchedule, Schedule, ScheduledTask

__all__ = ["Scheduler", "symbolic_timeline"]


class Scheduler(Protocol):
    """A scheduling algorithm for M-task graphs."""

    def schedule(self, graph: TaskGraph) -> Union[LayeredSchedule, Schedule]:
        """Compute a schedule for ``graph`` on the scheduler's platform."""
        ...


def symbolic_timeline(
    schedule: LayeredSchedule,
    cost: CostModel,
    expand_chains: bool = True,
) -> Schedule:
    """Estimate a start/finish timeline for a layered schedule.

    Uses the symbolic cost ``Tsymb`` (default mapping pattern); layers are
    separated by a barrier, groups execute their tasks one after another.
    This is the makespan the *scheduling* phase reasons about -- the
    simulator recomputes the real timeline after mapping.
    """
    out = Schedule(schedule.nprocs)
    t_layer = 0.0
    for layer in schedule.layers:
        ranges = layer.symbolic_ranges()
        layer_end = t_layer
        for gi, tasks in enumerate(layer.groups):
            cores = tuple(ranges[gi])
            t = t_layer
            for task in tasks:
                members = schedule.expand(task) if expand_chains else [task]
                for m in members:
                    width = m.clamp_procs(len(cores))
                    dur = cost.tsymb(m, width)
                    out.add(ScheduledTask(m, t, t + dur, cores[:width]))
                    t += dur
            layer_end = max(layer_end, t)
        t_layer = layer_end
    return out
