"""Scheduler interface, normalized results and symbolic timelines.

Historically every scheduler returned its own artefact -- the layer-based
algorithm a :class:`~repro.core.schedule.LayeredSchedule`, CPA/CPR a
symbolic-core :class:`~repro.core.schedule.Schedule` -- and every caller
had to know which it got (the old ``Union[LayeredSchedule, Schedule]``
contract).  That union is gone: every :class:`Scheduler` now returns a
:class:`SchedulingResult` that carries whichever artefact the algorithm
produced plus the chain-expansion map and per-run statistics, and exposes
uniform accessors (:meth:`SchedulingResult.symbolic_timeline`,
:meth:`SchedulingResult.predicted_makespan`) the pipeline builds on.

Code that still treats a :class:`SchedulingResult` like the old raw
artefacts gets a targeted error message instead of an ``AttributeError``
puzzle -- see :meth:`SchedulingResult.__getattr__`.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.costmodel import CostModel
from ..core.graph import TaskGraph
from ..core.schedule import LayeredSchedule, Schedule, ScheduledTask
from ..core.task import MTask
from ..obs import Instrumentation

__all__ = ["Scheduler", "SchedulingResult", "symbolic_timeline"]


#: old attribute -> migration hint, used by the misuse guard below
_MIGRATION_HINTS = {
    "layers": ".layered.layers",
    "num_layers": ".layered.num_layers",
    "describe": ".layered.describe()",
    "expand": ".expand_task(task)",
    "all_original_tasks": ".layered.all_original_tasks()",
    "entries": ".timeline.entries",
    "makespan": ".timeline.makespan (or .predicted_makespan(cost))",
    "add": ".timeline.add",
    "work_area": ".timeline.work_area()",
    "idle_fraction": ".timeline.idle_fraction()",
    "gantt_lines": ".timeline.gantt_lines()",
}


@dataclass
class SchedulingResult:
    """Normalized output of every scheduling algorithm.

    Exactly one of ``layered`` / ``timeline`` is set for static
    schedulers (``kind`` tells which); the dynamic scheduler additionally
    attaches the :class:`~repro.sim.trace.ExecutionTrace` it produced
    while scheduling, since its decisions *are* the execution.

    ``expansion`` maps contracted chain nodes to their member tasks in
    chain order (identity for non-chain tasks); it is filled by the
    scheduler when it contracts internally (layer-based algorithm) or by
    the pipeline's contraction stage (CPA/CPR and friends).
    """

    nprocs: int
    scheduler: str = ""
    layered: Optional[LayeredSchedule] = None
    timeline: Optional[Schedule] = None
    expansion: Dict[MTask, List[MTask]] = field(default_factory=dict)
    #: per-task core allocation of the allocation-based baselines
    allocation: Optional[Dict[MTask, int]] = None
    #: simulated trace, when the scheduler executed while scheduling
    trace: Optional[object] = None
    #: free-form per-run statistics (probe counts, iterations, ...)
    stats: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.layered is None and self.timeline is None and self.trace is None:
            raise ValueError(
                "SchedulingResult needs a layered schedule, a timeline or a trace"
            )
        if self.layered is not None and self.timeline is not None:
            raise ValueError(
                "SchedulingResult carries either a layered schedule or a "
                "timeline, not both"
            )

    # ------------------------------------------------------------------
    @property
    def kind(self) -> str:
        """``"layered"``, ``"timeline"`` or ``"trace"``."""
        if self.layered is not None:
            return "layered"
        if self.timeline is not None:
            return "timeline"
        return "trace"

    def expand_task(self, task: MTask) -> List[MTask]:
        """Member tasks of a (possibly contracted) node, in chain order."""
        return self.expansion.get(task, [task])

    def scheduled_tasks(self) -> List[MTask]:
        """All *original* tasks the result covers (chains expanded)."""
        if self.layered is not None:
            return self.layered.all_original_tasks()
        if self.timeline is not None:
            return [
                m for e in self.timeline.entries for m in self.expand_task(e.task)
            ]
        return [e.task for e in self.trace.entries]  # type: ignore[union-attr]

    # ------------------------------------------------------------------
    def symbolic_timeline(self, cost: CostModel, expand_chains: bool = True) -> Schedule:
        """The symbolic-core timeline the scheduling phase reasoned about.

        For layered results this runs :func:`symbolic_timeline`; timeline
        results already are one (chains expanded on request); dynamic
        results rebuild a symbolic view from the trace's physical cores.
        """
        if self.layered is not None:
            return symbolic_timeline(self.layered, cost, expand_chains)
        if self.timeline is not None:
            if not expand_chains or not self.expansion:
                return self.timeline
            return self._expanded_timeline(cost)
        return self._timeline_from_trace()

    def _expanded_timeline(self, cost: CostModel) -> Schedule:
        out = Schedule(self.timeline.nprocs)
        for e in self.timeline.entries:
            members = self.expand_task(e.task)
            if len(members) == 1 and members[0] is e.task:
                out.add(e)
                continue
            t = e.start
            for m in members:
                width = m.clamp_procs(len(e.cores))
                dur = cost.tsymb(m, width)
                out.add(ScheduledTask(m, t, t + dur, e.cores[:width]))
                t += dur
        return out

    def _timeline_from_trace(self) -> Schedule:
        index = {c: i for i, c in enumerate(self.trace.machine.cores())}
        out = Schedule(len(index))
        for e in self.trace.entries:
            out.add(
                ScheduledTask(
                    e.task, e.start, e.finish, tuple(index[c] for c in e.cores)
                )
            )
        return out

    def predicted_makespan(self, cost: CostModel) -> float:
        """Makespan of the symbolic timeline (the scheduler's estimate)."""
        return self.symbolic_timeline(cost).makespan

    # ------------------------------------------------------------------
    def __getattr__(self, name: str):
        if name in _MIGRATION_HINTS:
            raise AttributeError(
                f"SchedulingResult has no attribute {name!r}: schedulers no "
                f"longer return raw LayeredSchedule/Schedule objects (the old "
                f"Union contract is gone). Use result{_MIGRATION_HINTS[name]} "
                f"instead, or run the schedule through "
                f"repro.pipeline.SchedulingPipeline."
            )
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}"
        )


class Scheduler(abc.ABC):
    """A scheduling algorithm for M-task graphs.

    Concrete schedulers implement :meth:`_plan` and set ``cost`` (the
    cost model binding the target platform).  :meth:`schedule` wraps the
    run in an instrumentation span and normalizes the contract: every
    scheduler returns a :class:`SchedulingResult`, never a raw
    ``LayeredSchedule`` or ``Schedule``.
    """

    #: cost model bound to the target platform (set by subclasses)
    cost: CostModel

    #: True when the algorithm performs (or deliberately skips) chain
    #: contraction itself; the pipeline then leaves the graph alone.
    handles_contraction: bool = False

    @property
    def name(self) -> str:
        return type(self).__name__

    @property
    def nprocs(self) -> int:
        return self.cost.platform.total_cores

    def schedule(
        self, graph: TaskGraph, obs: Optional[Instrumentation] = None
    ) -> SchedulingResult:
        """Compute a schedule for ``graph`` on the scheduler's platform."""
        obs = obs if obs is not None else Instrumentation()
        with obs.span("schedule", scheduler=self.name):
            result = self._plan(graph, obs)
        if not isinstance(result, SchedulingResult):
            raise TypeError(
                f"{self.name}._plan returned {type(result).__name__}; "
                "returning raw LayeredSchedule/Schedule objects is no longer "
                "supported -- wrap the artefact in a SchedulingResult"
            )
        return result

    @abc.abstractmethod
    def _plan(self, graph: TaskGraph, obs: Instrumentation) -> SchedulingResult:
        """Algorithm body; must return a :class:`SchedulingResult`."""


def symbolic_timeline(
    schedule: LayeredSchedule,
    cost: CostModel,
    expand_chains: bool = True,
) -> Schedule:
    """Estimate a start/finish timeline for a layered schedule.

    Uses the symbolic cost ``Tsymb`` (default mapping pattern); layers are
    separated by a barrier, groups execute their tasks one after another.
    This is the makespan the *scheduling* phase reasons about -- the
    simulator recomputes the real timeline after mapping.
    """
    if isinstance(schedule, SchedulingResult):
        raise TypeError(
            "symbolic_timeline expects a LayeredSchedule; you passed a "
            "SchedulingResult -- call result.symbolic_timeline(cost) instead"
        )
    out = Schedule(schedule.nprocs)
    t_layer = 0.0
    for layer in schedule.layers:
        ranges = layer.symbolic_ranges()
        layer_end = t_layer
        for gi, tasks in enumerate(layer.groups):
            cores = tuple(ranges[gi])
            t = t_layer
            for task in tasks:
                members = schedule.expand(task) if expand_chains else [task]
                for m in members:
                    width = m.clamp_procs(len(cores))
                    dur = cost.tsymb(m, width)
                    out.add(ScheduledTask(m, t, t + dur, cores[:width]))
                    t += dur
            layer_end = max(layer_end, t)
        t_layer = layer_end
    return out
