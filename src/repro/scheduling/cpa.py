"""CPA -- Critical Path and Allocation (Radulescu & van Gemund, 2001).

Comparison baseline of Section 4.3.  CPA decouples the *allocation* phase
from the *scheduling* phase:

* allocation starts every task at one core and repeatedly gives one more
  core to the critical-path task with the largest execution-time gain,
  until the critical path no longer exceeds the average area
  ``A = sum_t q_t * T(t, q_t) / P``;
* scheduling is an earliest-finish list scheduler over the fixed
  allocation (:mod:`repro.scheduling.listsched`).

Because the allocation phase never looks back at the global core budget,
wide graphs of independent tasks can end up with ``sum_t q_t > P``
("over-allocation"), serialising tasks that were meant to run
concurrently -- exactly the behaviour the paper observes for the PABM
method (Fig. 13 left).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..core.costmodel import CostModel
from ..core.graph import TaskGraph
from ..core.task import MTask
from ..obs import Instrumentation
from .base import Scheduler, SchedulingResult
from .listsched import list_schedule

__all__ = ["CPAScheduler"]


@dataclass
class CPAScheduler(Scheduler):
    """The CPA two-phase M-task scheduler."""

    cost: CostModel
    #: safety bound on allocation iterations (defaults to ample headroom)
    max_iterations: int = 100_000
    #: cores added per allocation move; > 1 coarsens the search on large
    #: machines (a performance knob, not part of the original algorithm)
    granularity: int = 1

    def allocate(self, graph: TaskGraph) -> Dict[MTask, int]:
        """CPA allocation phase."""
        P = self.cost.platform.total_cores
        step = max(1, self.granularity)
        alloc: Dict[MTask, int] = {t: t.min_procs for t in graph}
        for _ in range(self.max_iterations):
            times = {t: self.cost.tsymb(t, alloc[t]) for t in graph}
            cp_len = graph.critical_path_length(times)
            area = sum(alloc[t] * times[t] for t in graph) / P
            if cp_len <= area:
                break
            path = graph.critical_path(times)
            best_task, best_gain = None, 0.0
            for t in path:
                limit = t.clamp_procs(P)
                if alloc[t] >= limit:
                    continue
                trial = min(limit, alloc[t] + step)
                gain = times[t] - self.cost.tsymb(t, trial)
                if gain > best_gain:
                    best_task, best_gain = t, gain
            if best_task is None:
                break  # no critical-path task benefits from another core
            alloc[best_task] = min(
                best_task.clamp_procs(P), alloc[best_task] + step
            )
        return alloc

    def _plan(self, graph: TaskGraph, obs: Instrumentation) -> SchedulingResult:
        with obs.span("allocate"):
            alloc = self.allocate(graph)
        with obs.span("listsched"):
            timeline = list_schedule(graph, alloc, self.cost)
        return SchedulingResult(
            nprocs=self.nprocs,
            scheduler=self.name,
            timeline=timeline,
            allocation=alloc,
            stats={"allocated_cores": float(sum(alloc.values()))},
        )
