"""Functional data re-distribution between M-task groups.

This is the *executable* counterpart of the re-distribution cost model:
given the per-rank chunks of an array under a source distribution, produce
the per-rank chunks under a target distribution, together with the exact
number of elements that logically moved between ranks.  The SPMD runtime
(:mod:`repro.runtime`) uses it to really push numpy data through an M-task
program, which lets the tests cross-check the analytic transfer matrices
against observed data movement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from .distribution import Distribution1D, transfer_counts

__all__ = ["RedistributionResult", "split", "assemble", "redistribute"]


@dataclass(frozen=True)
class RedistributionResult:
    """Chunks after re-distribution plus accounting information."""

    chunks: List[np.ndarray]
    #: element-transfer matrix, ``moved[i, j]`` = elements from source rank
    #: ``i`` to target rank ``j`` (diagonal of a same-group identity
    #: re-distribution would be local copies).
    moved: np.ndarray

    @property
    def total_elements_moved(self) -> int:
        return int(self.moved.sum())


def split(array: np.ndarray, dist: Distribution1D) -> List[np.ndarray]:
    """Split a global 1-D array into per-rank local chunks under ``dist``."""
    if array.ndim != 1:
        raise ValueError("split expects a one-dimensional array")
    if len(array) != dist.size:
        raise ValueError(f"array has {len(array)} elements, distribution {dist.size}")
    return [array[dist.local_indices(r)] for r in range(dist.nprocs)]


def assemble(chunks: Sequence[np.ndarray], dist: Distribution1D) -> np.ndarray:
    """Inverse of :func:`split`: reconstruct the global array."""
    if len(chunks) != dist.nprocs:
        raise ValueError(f"expected {dist.nprocs} chunks, got {len(chunks)}")
    if dist.is_replicated:
        out = np.asarray(chunks[0]).copy()
        for r, c in enumerate(chunks):
            if len(c) != dist.size:
                raise ValueError(f"replicated chunk {r} has wrong length {len(c)}")
        return out
    dtype = chunks[0].dtype if chunks else float
    out = np.empty(dist.size, dtype=dtype)
    for r, chunk in enumerate(chunks):
        idx = dist.local_indices(r)
        if len(chunk) != len(idx):
            raise ValueError(
                f"chunk of rank {r} has {len(chunk)} elements, expected {len(idx)}"
            )
        out[idx] = chunk
    return out


def redistribute(
    chunks: Sequence[np.ndarray],
    src: Distribution1D,
    dst: Distribution1D,
) -> RedistributionResult:
    """Re-distribute per-rank chunks from ``src`` to ``dst`` layout.

    The implementation routes through the assembled global array, which is
    semantically the identity an MPI implementation must realise with
    point-to-point messages; the returned ``moved`` matrix reports the
    logical message sizes an implementation would send (diagonal entries
    are rank-local and free on a real machine when both groups share
    cores).
    """
    if src.size != dst.size:
        raise ValueError("source and target distributions cover different sizes")
    global_arr = assemble(chunks, src)
    new_chunks = split(global_arr, dst) if not dst.is_replicated else [
        global_arr.copy() for _ in range(dst.nprocs)
    ]
    moved = transfer_counts(src, dst)
    return RedistributionResult(chunks=new_chunks, moved=moved)
