"""Data distributions of M-task parameters.

The CM-task model annotates every input/output parameter of an M-task with
a *data distribution type* describing how the elements are spread over the
cores executing the task (Section 2.1).  The compiler supports arbitrary
block-cyclic distributions over multi-dimensional processor meshes plus
replication; this module implements exactly that family:

* :class:`BlockCyclic` -- one-dimensional block-cyclic with block size
  ``b`` over ``p`` ranks; ``owner(i) = (i // b) mod p``.  ``b = 1`` is the
  cyclic distribution, ``b = ceil(n/p)`` the block distribution.
* :class:`Replicated` -- every rank holds the full array.
* :class:`MeshDistribution` -- Cartesian product of per-dimension 1-D
  distributions over a processor mesh.

Distributions are *logical*: they know rank indices ``0..p-1`` within a
task's group, never physical cores.  The mapping step decides which
physical core backs which rank.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil, prod
from typing import Tuple

import numpy as np

__all__ = [
    "Distribution1D",
    "BlockCyclic",
    "block",
    "cyclic",
    "Replicated",
    "MeshDistribution",
    "transfer_counts",
    "mesh_transfer_counts",
]


class Distribution1D:
    """Interface of one-dimensional distributions of ``size`` elements
    over ``nprocs`` ranks."""

    size: int
    nprocs: int

    @property
    def is_replicated(self) -> bool:
        return False

    def owners(self) -> np.ndarray:
        """``owners()[i]`` is the rank owning global element ``i``.

        Undefined for replicated distributions (every rank owns all).
        """
        raise NotImplementedError

    def local_indices(self, rank: int) -> np.ndarray:
        """Global indices owned by ``rank``, in increasing order."""
        raise NotImplementedError

    def local_size(self, rank: int) -> int:
        """Number of elements owned by ``rank``."""
        return len(self.local_indices(rank))

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.nprocs:
            raise ValueError(f"rank {rank} out of range [0, {self.nprocs})")


@dataclass(frozen=True)
class BlockCyclic(Distribution1D):
    """Block-cyclic distribution: blocks of ``block_size`` contiguous
    elements dealt to ranks round-robin."""

    size: int
    nprocs: int
    block_size: int

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("size must be non-negative")
        if self.nprocs <= 0:
            raise ValueError("nprocs must be positive")
        if self.block_size <= 0:
            raise ValueError("block_size must be positive")

    def owners(self) -> np.ndarray:
        """Owning rank of every global index."""
        return (np.arange(self.size) // self.block_size) % self.nprocs

    def local_indices(self, rank: int) -> np.ndarray:
        """Global indices owned by ``rank``."""
        self._check_rank(rank)
        idx = np.arange(self.size)
        return idx[(idx // self.block_size) % self.nprocs == rank]

    def local_size(self, rank: int) -> int:
        """Number of elements owned by ``rank`` (closed form)."""
        self._check_rank(rank)
        full_rounds, rem = divmod(self.size, self.block_size * self.nprocs)
        count = full_rounds * self.block_size
        # remainder: partial round of blocks
        start = rank * self.block_size
        count += min(max(rem - start, 0), self.block_size)
        return count

    @property
    def is_block(self) -> bool:
        """True when this degenerates to the plain block distribution."""
        return self.block_size >= ceil(self.size / self.nprocs) and self.size > 0

    @property
    def is_cyclic(self) -> bool:
        return self.block_size == 1


def block(size: int, nprocs: int) -> BlockCyclic:
    """Plain block distribution (one contiguous chunk per rank)."""
    return BlockCyclic(size, nprocs, max(1, ceil(size / nprocs)))


def cyclic(size: int, nprocs: int) -> BlockCyclic:
    """Cyclic distribution (element ``i`` on rank ``i mod p``)."""
    return BlockCyclic(size, nprocs, 1)


@dataclass(frozen=True)
class Replicated(Distribution1D):
    """Every rank stores the complete array (the ``replic`` type of the
    specification language, Fig. 3)."""

    size: int
    nprocs: int

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("size must be non-negative")
        if self.nprocs <= 0:
            raise ValueError("nprocs must be positive")

    @property
    def is_replicated(self) -> bool:
        return True

    def owners(self) -> np.ndarray:
        """Replicated data has no unique owner; raises ``TypeError``."""
        raise TypeError("a replicated distribution has no unique owners")

    def local_indices(self, rank: int) -> np.ndarray:
        """Every rank holds all indices."""
        self._check_rank(rank)
        return np.arange(self.size)

    def local_size(self, rank: int) -> int:
        """Every rank holds all elements."""
        self._check_rank(rank)
        return self.size


@dataclass(frozen=True)
class MeshDistribution:
    """Multi-dimensional distribution over a processor mesh.

    ``dims[k]`` distributes axis ``k`` of an array of shape ``shape`` over
    ``mesh[k]`` mesh coordinates; the owning rank of a multi-index is the
    row-major ravel of the per-axis owner coordinates.
    """

    shape: Tuple[int, ...]
    mesh: Tuple[int, ...]
    dims: Tuple[Distribution1D, ...]

    def __post_init__(self) -> None:
        if len(self.shape) != len(self.mesh) or len(self.shape) != len(self.dims):
            raise ValueError("shape, mesh and dims must have equal length")
        for k, (n, p, d) in enumerate(zip(self.shape, self.mesh, self.dims)):
            if d.size != n or d.nprocs != p:
                raise ValueError(
                    f"axis {k}: distribution covers {d.size} elements on "
                    f"{d.nprocs} ranks, expected {n} on {p}"
                )

    @property
    def size(self) -> int:
        return prod(self.shape)

    @property
    def nprocs(self) -> int:
        return prod(self.mesh)

    @property
    def is_replicated(self) -> bool:
        return all(d.is_replicated for d in self.dims)

    def owners(self) -> np.ndarray:
        """Flat array (row-major over the data shape) of owning ranks."""
        if self.is_replicated:
            raise TypeError("a replicated distribution has no unique owners")
        coords = [d.owners() for d in self.dims]
        grids = np.meshgrid(*coords, indexing="ij")
        flat = np.ravel_multi_index([g for g in grids], self.mesh)
        return flat.reshape(-1)

    def local_size(self, rank: int) -> int:
        """Number of elements owned by ``rank``."""
        if not 0 <= rank < self.nprocs:
            raise ValueError(f"rank {rank} out of range [0, {self.nprocs})")
        coord = np.unravel_index(rank, self.mesh)
        return prod(d.local_size(c) for d, c in zip(self.dims, coord))


def transfer_counts(src: Distribution1D, dst: Distribution1D) -> np.ndarray:
    """Element-transfer matrix between two 1-D distributions.

    Returns an integer matrix ``C`` of shape ``(src.nprocs, dst.nprocs)``
    where ``C[i, j]`` is the number of elements rank ``j`` of the target
    needs that are owned by rank ``i`` of the source.  Whether a transfer
    is free because both ranks live on the same physical core is a mapping
    question answered by :mod:`repro.comm.redistribution`.

    Replication is handled as follows:

    * replicated source: every target rank can obtain its part from *any*
      source rank; by convention we charge it to source rank
      ``j mod src.nprocs`` (balanced fan-out).
    * replicated target: every target rank needs the full array, split
      over the owning source ranks (an allgather-like pattern).
    """
    if src.size != dst.size:
        raise ValueError(
            f"distributions cover different sizes: {src.size} vs {dst.size}"
        )
    qs, qd = src.nprocs, dst.nprocs
    counts = np.zeros((qs, qd), dtype=np.int64)
    if src.size == 0:
        return counts

    if src.is_replicated and dst.is_replicated:
        return counts  # every target rank copies locally / from its twin

    if src.is_replicated:
        for j in range(qd):
            counts[j % qs, j] = dst.local_size(j)
        return counts

    if dst.is_replicated:
        for i in range(qs):
            counts[i, :] = src.local_size(i)
        return counts

    so = src.owners()
    do = dst.owners()
    pair = so * qd + do
    binc = np.bincount(pair, minlength=qs * qd)
    return binc.reshape(qs, qd)


def mesh_transfer_counts(src: MeshDistribution, dst: MeshDistribution) -> np.ndarray:
    """Element-transfer matrix between two mesh distributions.

    Both distributions must cover the same array shape (the meshes may
    differ).  Because the owner function factorises over the axes and
    local index sets are Cartesian products, the multi-dimensional
    transfer matrix is the Kronecker product of the per-axis matrices
    (ranks are row-major ravels of the mesh coordinates).
    """
    if src.shape != dst.shape:
        raise ValueError(
            f"distributions cover different shapes: {src.shape} vs {dst.shape}"
        )
    result = np.array([[1]], dtype=np.int64)
    for d_src, d_dst in zip(src.dims, dst.dims):
        if d_src.is_replicated and d_dst.is_replicated:
            # a fully replicated axis contributes its whole extent along
            # the co-located coordinate pair (the flat both-replicated
            # convention of zero movement would zero out the product)
            factor = np.zeros((d_src.nprocs, d_dst.nprocs), dtype=np.int64)
            for j in range(d_dst.nprocs):
                factor[j % d_src.nprocs, j] = d_dst.local_size(j)
        else:
            factor = transfer_counts(d_src, d_dst)
        result = np.kron(result, factor)
    return result
