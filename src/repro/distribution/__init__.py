"""Block-cyclic / replicated data distributions and re-distribution."""

from .distribution import (
    BlockCyclic,
    Distribution1D,
    MeshDistribution,
    Replicated,
    block,
    cyclic,
    mesh_transfer_counts,
    transfer_counts,
)
from .redistribute import RedistributionResult, assemble, redistribute, split

__all__ = [
    "Distribution1D",
    "BlockCyclic",
    "block",
    "cyclic",
    "Replicated",
    "MeshDistribution",
    "transfer_counts",
    "mesh_transfer_counts",
    "RedistributionResult",
    "split",
    "assemble",
    "redistribute",
]
