"""Hybrid MPI+OpenMP execution model."""

from .model import HybridCostModel, process_leaders

__all__ = ["HybridCostModel", "process_leaders"]
