"""Hybrid MPI+OpenMP execution model (Section 4.7).

In a hybrid execution scheme the lower level parallelism within an
M-task uses ``h`` OpenMP threads per MPI process: one process per ``h``
consecutive cores.  Consequences captured by
:class:`HybridCostModel`:

* **Collectives shrink**: an operation that a pure MPI run executes over
  ``q`` ranks now runs over ``q / h`` process leaders (the total payload
  is unchanged).  Fewer ring/tree rounds and no intra-node software
  stack -- the big win for the data parallel IRK version in Fig. 18.
* **Thread synchronisation costs**: every collective occurrence (and
  every additional synchronisation point a task declares) pays a
  fork/join barrier of the thread team, ``tau_omp * log2(h)``.  Programs
  with very frequent small collectives -- the data parallel DIIRK version
  and its per-pivot broadcasts -- lose more to this than they save,
  reproducing the slowdown in Fig. 18 (right).
* **Thread placement**: threads must share a node on clusters; the
  distributed-shared-memory Altix allows teams spanning nodes
  (Section 4.7, Fig. 19) at a NUMA penalty per remote member.

With ``h = 1`` the model reduces exactly to the pure-MPI
:class:`~repro.core.costmodel.CostModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import log2
from typing import List, Optional, Sequence, Tuple

from ..cluster.architecture import CoreId
from ..comm.collectives import collective_time
from ..comm.contention import ContentionContext
from ..core.costmodel import CostModel
from ..core.task import MTask

__all__ = ["HybridCostModel", "process_leaders"]


def process_leaders(cores: Sequence[CoreId], h: int) -> List[CoreId]:
    """One leader core per team of ``h`` consecutive cores.

    An incomplete trailing team still gets a leader (it simply runs with
    fewer threads).
    """
    if h < 1:
        raise ValueError("threads per process must be >= 1")
    return [cores[i] for i in range(0, len(cores), h)]


def _team_spans_nodes(cores: Sequence[CoreId], h: int) -> bool:
    for i in range(0, len(cores), h):
        team = cores[i : i + h]
        if len({c.node for c in team}) > 1:
            return True
    return False


@dataclass(frozen=True)
class HybridCostModel(CostModel):
    """Cost model of a hybrid MPI+OpenMP execution scheme.

    Parameters
    ----------
    threads_per_process:
        OpenMP team size ``h``.  Teams are formed from consecutive cores
        of the mapping sequence, which is why the paper combines hybrid
        execution with the consecutive mapping.
    tau_omp:
        Cost of one thread-team barrier / fork-join (seconds).
    tau_mpi:
        Per-rank-doubling cost of the extra leader synchronisation a
        funneled hybrid execution needs around every MPI call (the master
        thread issues MPI while the team waits; entering and leaving that
        region costs a two-level barrier whose MPI part grows with the
        leader count).
    numa_penalty:
        Multiplier on ``tau_omp`` when a team spans nodes (only possible
        on DSM machines such as the SGI Altix).
    """

    threads_per_process: int = 1
    tau_omp: float = 2.0e-6
    tau_mpi: float = 1.0e-6
    numa_penalty: float = 4.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.threads_per_process < 1:
            raise ValueError("threads_per_process must be >= 1")
        if self.tau_omp < 0 or self.tau_mpi < 0 or self.numa_penalty < 1:
            raise ValueError("invalid hybrid parameters")

    # ------------------------------------------------------------------
    def _check_team_placement(self, cores: Sequence[CoreId]) -> bool:
        spans = _team_spans_nodes(cores, self.threads_per_process)
        if spans and not self.platform.machine.shared_memory_across_nodes:
            raise ValueError(
                "thread teams span node boundaries but "
                f"{self.platform.name} is not a shared-memory machine; "
                "use a consecutive mapping or fewer threads"
            )
        return spans

    def sync_cost(self, spans_nodes: bool = False) -> float:
        """Cost of one team barrier."""
        h = self.threads_per_process
        if h == 1:
            return 0.0
        penalty = self.numa_penalty if spans_nodes else 1.0
        return self.tau_omp * log2(h) * penalty

    # ------------------------------------------------------------------
    def tcomm_mapped(
        self,
        task: MTask,
        cores: Sequence[CoreId],
        ctx: Optional[ContentionContext] = None,
        peer_groups: Optional[Sequence[Sequence[CoreId]]] = None,
        all_cores: Optional[Sequence[CoreId]] = None,
        task_parallel_program: Optional[bool] = None,
    ) -> float:
        """Mapped communication cost plus thread-synchronisation term."""
        h = self.threads_per_process
        if h == 1:
            return super().tcomm_mapped(
                task, cores, ctx, peer_groups, all_cores, task_parallel_program
            )
        spans = self._check_team_placement(cores)
        machine = self.platform.machine
        if all_cores is None:
            all_cores = machine.cores()
        leaders = process_leaders(cores, h)
        leader_peers = (
            [process_leaders(g, h) for g in peer_groups] if peer_groups else None
        )
        all_leaders = process_leaders(list(all_cores), h)
        from math import log2 as _log2

        barrier = self.sync_cost(spans) + self.tau_mpi * _log2(
            max(2.0, float(len(leaders)))
        )

        base = CostModel(self.platform, self.compute_efficiency)
        comm = base.tcomm_mapped(
            task,
            leaders,
            ctx,
            leader_peers,
            all_leaders,
            task_parallel_program,
        )
        # every collective occurrence and every declared synchronisation
        # point synchronises the thread team
        occurrences = sum(c.count for c in task.comm) + task.sync_points
        return comm + occurrences * barrier
