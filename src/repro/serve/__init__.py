"""Scheduling-as-a-service: async multi-tenant HTTP server over the pipeline.

``repro.serve`` turns the one-shot :class:`~repro.pipeline.SchedulingPipeline`
into a long-lived service.  Clients POST JSON describing a workload (a
paper solver config or a DSL program), a topology and scheduling options
to ``/v1/schedule``, ``/v1/simulate`` or ``/v1/run``; CPU-bound g-search
runs in a bounded process pool; identical requests are answered from a
content-addressed cache keyed by ``(program digest, topology digest,
canonical options)`` with byte-identical responses; per-tenant traffic
is accounted through the :class:`~repro.obs.MetricsRegistry` and scraped
at ``/metrics``.

Layering, bottom to top:

- :mod:`repro.serve.api` -- pure request validation, canonicalization,
  digesting and the picklable compute function (no asyncio, no sockets).
- :mod:`repro.serve.cache` -- two-tier (memory + disk) byte cache with
  atomic tmp-rename writes.
- :mod:`repro.serve.service` -- asyncio routing, backpressure,
  single-flight dedup and accounting.
- :mod:`repro.serve.http` -- the minimal HTTP/1.1 wire layer and a
  thread-hosted server for tests and benchmarks.

Run one with ``python -m repro.serve --port 8080 --workers 4``.
"""

from .api import (
    ENDPOINTS,
    OPTION_DEFAULTS,
    PLATFORMS,
    RequestError,
    SOLVER_CFGS,
    cache_key,
    canonical_options,
    compute_response,
    render_body,
    request_digests,
    validate_request,
)
from .cache import ScheduleCache
from .http import HttpServer, ServerThread
from .service import Response, ScheduleService

__all__ = [
    "ENDPOINTS",
    "OPTION_DEFAULTS",
    "PLATFORMS",
    "RequestError",
    "SOLVER_CFGS",
    "HttpServer",
    "Response",
    "ScheduleCache",
    "ScheduleService",
    "ServerThread",
    "cache_key",
    "canonical_options",
    "compute_response",
    "render_body",
    "request_digests",
    "validate_request",
]
