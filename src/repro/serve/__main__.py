"""Command-line entry point: ``python -m repro.serve``.

Boots the asyncio HTTP server with a process worker pool, optional
persistent schedule cache (``--cache-dir``) and optional run registry
(``--registry-dir``), then serves until interrupted.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import List, Optional

from .http import HttpServer
from .service import ScheduleService

_EPILOG = """\
examples:
  python -m repro.serve --port 8080 --workers 4 --cache-dir .serve-cache
  curl -s localhost:8080/healthz
  curl -s -XPOST localhost:8080/v1/schedule \\
      -d '{"workload":{"solver":"irk","n":128},"topology":{"platform":"chic","cores":64}}'
"""


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro.serve`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Serve schedule/simulate/run over HTTP/JSON.",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8080, help="bind port (0 = ephemeral)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=2,
        help="solver worker processes (0 = in-process threads)",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=16,
        help="max in-flight solver jobs before 429 backpressure",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="persistent schedule cache directory (default: in-memory only)",
    )
    parser.add_argument(
        "--registry-dir",
        default=None,
        help="append solved runs to a RunRegistry at this directory",
    )
    return parser


async def _serve(args: argparse.Namespace) -> None:
    service = ScheduleService(
        cache_dir=args.cache_dir,
        workers=args.workers,
        max_queue=args.max_queue,
        registry_dir=args.registry_dir,
    )
    server = HttpServer(service, host=args.host, port=args.port)
    await server.start()
    print(f"repro.serve listening on {server.url}", flush=True)
    try:
        await server.serve_forever()
    finally:
        await server.stop()
        service.close()


def main(argv: Optional[List[str]] = None) -> int:
    """Run the server until Ctrl-C; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        asyncio.run(_serve(args))
    except KeyboardInterrupt:
        print("repro.serve: shutting down", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
