"""Request validation, canonicalization and the solver-side computation.

This module is the *pure* half of the scheduling service: everything in
it is a deterministic function of the request dict, so the asyncio layer
can offload :func:`compute_response` to a worker process (requests and
responses are plain JSON-serialisable dicts, nothing closes over sockets
or event loops) and cache the rendered bytes content-addressed.

A request names a workload in one of two interchange formats:

* ``"workload"`` -- one of the five paper solvers by name
  (``{"solver": "irk", "n": 120}``); the service rebuilds the solver's
  M-task step graph exactly as ``python -m repro.obs`` does;
* ``"program"`` -- a CM-task DSL program (:mod:`repro.spec`), shipped as
  source text plus compile-time ``sizes`` and per-task ``work`` cost
  annotations, parsed and built server-side.  Malformed programs become
  structured 4xx errors, never tracebacks.

plus a ``"topology"`` (platform name and core count) and canonical
``"options"``.  :func:`canonical_options` normalizes the options dict --
defaults are elided and keys sorted -- so two requests that differ only
in spelling (key order, explicit defaults) share one cache entry.
"""

from __future__ import annotations

import math
import re
import time
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from ..recovery.checkpoint import json_digest

__all__ = [
    "RequestError",
    "ENDPOINTS",
    "OPTION_DEFAULTS",
    "SOLVER_CFGS",
    "PLATFORMS",
    "canonical_options",
    "validate_request",
    "request_digests",
    "cache_key",
    "compute_response",
    "render_body",
]

#: the service's POST endpoints (under ``/v1/``)
ENDPOINTS = ("schedule", "simulate", "run")

#: MethodConfig keywords of the five paper solvers (kept in sync with
#: ``repro.obs.cli.SOLVER_CFGS`` by ``tests/test_serve.py``)
SOLVER_CFGS: Dict[str, Dict[str, int]] = {
    "irk": dict(K=4, m=7),
    "diirk": dict(K=4, m=3, I=2),
    "epol": dict(K=8),
    "pab": dict(K=8),
    "pabm": dict(K=8, m=2),
}

#: platform names ``repro.cluster.platforms.by_name`` accepts
PLATFORMS = ("chic", "juropa", "sgi_altix")

#: option name -> default value; a request option equal to its default
#: is elided from the canonical form (and therefore from the cache key)
OPTION_DEFAULTS: Dict[str, Any] = {
    "mapping": "consecutive",
    "version": "tp",
    "groups": None,
    "scheduler": "paper",
}

#: scheduler overrides accepted for DSL program requests
PROGRAM_SCHEDULERS = ("paper", "gsearch", "amtha", "moldable")

_TENANT_RE = re.compile(r"^[A-Za-z0-9._-]{1,64}$")

#: request body ceiling enforced by the HTTP layer (DSL sources included)
MAX_BODY_BYTES = 1 << 20

#: problem-size ceiling: a schedule request is CPU-bound work, the cap
#: keeps one tenant from wedging a worker for minutes
MAX_PROBLEM_N = 2000
MAX_CORES = 4096
MAX_DSL_BYTES = 256 * 1024


class RequestError(Exception):
    """A structured, client-visible request failure.

    Carries the HTTP ``status`` and a machine-readable ``code`` next to
    the human message; the HTTP layer renders it as
    ``{"error": {"code": ..., "message": ...}}`` -- clients never see a
    traceback.
    """

    def __init__(
        self, status: int, code: str, message: str, detail: Optional[Any] = None
    ) -> None:
        super().__init__(message)
        self.status = int(status)
        self.code = str(code)
        self.message = str(message)
        self.detail = detail

    def to_dict(self) -> Dict[str, Any]:
        """The JSON error envelope the HTTP layer sends back."""
        error: Dict[str, Any] = {"code": self.code, "message": self.message}
        if self.detail is not None:
            error["detail"] = self.detail
        return {"error": error}


def _bad(message: str, code: str = "invalid_request", detail: Any = None):
    return RequestError(400, code, message, detail)


# ----------------------------------------------------------------------
# validation / canonicalization
# ----------------------------------------------------------------------
def _require_mapping(value: Any, what: str) -> Dict[str, Any]:
    if not isinstance(value, dict):
        raise _bad(f"{what} must be a JSON object, got {type(value).__name__}")
    return value


def _check_int(value: Any, what: str, lo: int, hi: int) -> int:
    if isinstance(value, bool) or not isinstance(value, int):
        raise _bad(f"{what} must be an integer, got {value!r}")
    if not lo <= value <= hi:
        raise _bad(f"{what} must be in [{lo}, {hi}], got {value}")
    return value


def canonical_options(options: Optional[Mapping[str, Any]]) -> Dict[str, Any]:
    """Normalize an options dict into its canonical, digestable form.

    Unknown keys are rejected; values are validated; entries equal to
    their default (:data:`OPTION_DEFAULTS`) are elided and the rest is
    key-sorted, so the canonical form -- and therefore the options
    digest of the cache key -- is insensitive to key order and to
    spelling defaults out explicitly.
    """
    options = dict(_require_mapping(options or {}, "options"))
    unknown = sorted(set(options) - set(OPTION_DEFAULTS))
    if unknown:
        raise _bad(
            f"unknown option(s) {', '.join(map(repr, unknown))}; "
            f"accepted: {', '.join(sorted(OPTION_DEFAULTS))}",
            code="unknown_option",
        )
    out: Dict[str, Any] = {}
    mapping = options.get("mapping", OPTION_DEFAULTS["mapping"])
    if mapping not in ("consecutive", "scattered"):
        raise _bad(f"options.mapping must be 'consecutive' or 'scattered', got {mapping!r}")
    version = options.get("version", OPTION_DEFAULTS["version"])
    if version not in ("tp", "dp"):
        raise _bad(f"options.version must be 'tp' or 'dp', got {version!r}")
    groups = options.get("groups", OPTION_DEFAULTS["groups"])
    if groups is not None:
        groups = _check_int(groups, "options.groups", 1, MAX_CORES)
    scheduler = options.get("scheduler", OPTION_DEFAULTS["scheduler"])
    if scheduler not in PROGRAM_SCHEDULERS:
        raise _bad(
            f"options.scheduler must be one of {', '.join(PROGRAM_SCHEDULERS)}, "
            f"got {scheduler!r}"
        )
    for key, value in (
        ("mapping", mapping),
        ("version", version),
        ("groups", groups),
        ("scheduler", scheduler),
    ):
        if value != OPTION_DEFAULTS[key]:
            out[key] = value
    return dict(sorted(out.items()))


def _validate_topology(topology: Optional[Mapping[str, Any]]) -> Dict[str, Any]:
    topology = dict(_require_mapping(topology or {}, "topology"))
    unknown = sorted(set(topology) - {"platform", "cores"})
    if unknown:
        raise _bad(
            f"unknown topology key(s) {', '.join(map(repr, unknown))}; "
            "accepted: cores, platform",
            code="unknown_option",
        )
    platform = topology.get("platform", "chic")
    if platform not in PLATFORMS:
        raise _bad(
            f"topology.platform must be one of {', '.join(PLATFORMS)}, "
            f"got {platform!r}",
            code="unknown_platform",
        )
    cores = _check_int(topology.get("cores", 64), "topology.cores", 1, MAX_CORES)
    return {"cores": cores, "platform": platform}


def _validate_workload(workload: Mapping[str, Any]) -> Dict[str, Any]:
    workload = dict(_require_mapping(workload, "workload"))
    unknown = sorted(set(workload) - {"solver", "n"})
    if unknown:
        raise _bad(
            f"unknown workload key(s) {', '.join(map(repr, unknown))}; "
            "accepted: n, solver",
            code="unknown_option",
        )
    solver = workload.get("solver")
    if solver not in SOLVER_CFGS:
        raise _bad(
            f"workload.solver must be one of {', '.join(sorted(SOLVER_CFGS))}, "
            f"got {solver!r}",
            code="unknown_solver",
        )
    n = _check_int(workload.get("n", 120), "workload.n", 2, MAX_PROBLEM_N)
    return {"n": n, "solver": solver}


def _validate_program(program: Mapping[str, Any]) -> Dict[str, Any]:
    program = dict(_require_mapping(program, "program"))
    unknown = sorted(set(program) - {"dsl", "sizes", "work", "main", "loop"})
    if unknown:
        raise _bad(
            f"unknown program key(s) {', '.join(map(repr, unknown))}; "
            "accepted: dsl, loop, main, sizes, work",
            code="unknown_option",
        )
    dsl = program.get("dsl")
    if not isinstance(dsl, str) or not dsl.strip():
        raise _bad("program.dsl must be a non-empty CM-task DSL string")
    if len(dsl.encode()) > MAX_DSL_BYTES:
        raise RequestError(
            413, "payload_too_large",
            f"program.dsl exceeds {MAX_DSL_BYTES} bytes",
        )
    sizes = dict(_require_mapping(program.get("sizes", {}), "program.sizes"))
    for name, value in sizes.items():
        _check_int(value, f"program.sizes[{name!r}]", 1, 10**9)
    work = dict(_require_mapping(program.get("work", {}), "program.work"))
    for name, value in work.items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise _bad(f"program.work[{name!r}] must be a number, got {value!r}")
        if not math.isfinite(value) or value < 0:
            raise _bad(f"program.work[{name!r}] must be finite and >= 0")
    out: Dict[str, Any] = {
        "dsl": dsl,
        "sizes": dict(sorted(sizes.items())),
        "work": {k: float(v) for k, v in sorted(work.items())},
    }
    for key in ("main", "loop"):
        value = program.get(key)
        if value is not None:
            if not isinstance(value, str):
                raise _bad(f"program.{key} must be a string, got {value!r}")
            out[key] = value
    return out


def validate_request(endpoint: str, payload: Any) -> Dict[str, Any]:
    """Validate one request body; returns the canonical request dict.

    The canonical dict has key-sorted sections (``workload``/``program``,
    ``topology``, ``options``) with defaults applied or elided, so its
    canonical JSON is a deterministic identity of the request.  Raises
    :class:`RequestError` (a structured 4xx) on every malformed input.
    """
    if endpoint not in ENDPOINTS:
        raise RequestError(404, "not_found", f"unknown endpoint {endpoint!r}")
    payload = _require_mapping(payload, "request body")
    unknown = sorted(set(payload) - {"workload", "program", "topology", "options", "tenant"})
    if unknown:
        raise _bad(
            f"unknown request key(s) {', '.join(map(repr, unknown))}; "
            "accepted: options, program, tenant, topology, workload",
            code="unknown_option",
        )
    has_workload = "workload" in payload
    has_program = "program" in payload
    if has_workload == has_program:
        raise _bad(
            "exactly one of 'workload' (named paper solver) or 'program' "
            "(CM-task DSL) must be given"
        )
    tenant = payload.get("tenant", "anonymous")
    if not isinstance(tenant, str) or not _TENANT_RE.match(tenant):
        raise _bad(
            "tenant must match [A-Za-z0-9._-]{1,64}", code="invalid_tenant"
        )
    options = canonical_options(payload.get("options"))
    request: Dict[str, Any] = {
        "endpoint": endpoint,
        "tenant": tenant,
        "topology": _validate_topology(payload.get("topology")),
        "options": options,
    }
    if has_workload:
        request["workload"] = _validate_workload(payload["workload"])
        if options.get("scheduler", "paper") != "paper":
            raise _bad(
                "options.scheduler overrides apply to DSL 'program' requests; "
                "named workloads use the paper's scheduler (options.version "
                "picks the task- or data-parallel variant)"
            )
    else:
        request["program"] = _validate_program(payload["program"])
        for key in ("version", "groups"):
            if key in options:
                raise _bad(
                    f"options.{key} applies to named 'workload' requests, "
                    "not DSL programs (pick options.scheduler instead)"
                )
        if endpoint == "run":
            raise _bad(
                "the run endpoint executes functional task bodies, which a "
                "DSL program does not carry; use /v1/schedule or /v1/simulate",
                code="not_runnable",
            )
    return request


# ----------------------------------------------------------------------
# graph construction
# ----------------------------------------------------------------------
def _program_graph(request: Dict[str, Any]):
    """Build the M-task graph a request describes (workload or DSL)."""
    topology = request["topology"]
    if "workload" in request:
        from ..ode import MethodConfig, bruss2d
        from ..ode.programs import step_graph

        wl = request["workload"]
        cfg = MethodConfig(wl["solver"], **SOLVER_CFGS[wl["solver"]])
        return step_graph(bruss2d(wl["n"]), cfg)

    from ..spec import GraphBuilder, LexError, ParseError, TaskCost, parse

    prog = request["program"]
    work = prog.get("work", {})
    default_work = float(work.get("*", 0.0))

    def cost_for(value: float) -> TaskCost:
        return TaskCost(work=lambda env, sizes, _w=value: _w)

    try:
        ast = parse(prog["dsl"])
    except (LexError, ParseError) as exc:
        raise RequestError(400, "parse_error", f"program.dsl does not parse: {exc}")
    declared = {t.name for t in ast.tasks}
    unknown_work = sorted(set(work) - declared - {"*"})
    if unknown_work:
        raise _bad(
            f"program.work names undeclared task(s) "
            f"{', '.join(map(repr, unknown_work))}; declared: "
            f"{', '.join(sorted(declared)) or 'none'}",
            code="unknown_task",
        )
    costs = {
        name: cost_for(float(work.get(name, default_work))) for name in declared
    }
    try:
        build = GraphBuilder(ast, prog.get("sizes", {}), costs).build(
            prog.get("main")
        )
    except (KeyError, ValueError, TypeError) as exc:
        raise RequestError(400, "build_error", f"program.dsl does not build: {exc}")
    composed = build.composed_nodes()
    loop = prog.get("loop")
    if loop is not None:
        match = [t for t in composed if t.name == loop]
        if not match:
            raise _bad(
                f"program.loop {loop!r} names no composed (while-loop) node; "
                f"have: {', '.join(sorted(t.name for t in composed)) or 'none'}",
                code="unknown_loop",
            )
        return build.body_of(match[0])
    if len(composed) == 1:
        # the canonical shape: schedule the body of the single
        # time-stepping loop, exactly like the paper workloads
        return build.body_of(composed[0])
    if composed:
        raise _bad(
            f"program has {len(composed)} while-loop nodes; pick one with "
            f"program.loop (one of "
            f"{', '.join(sorted(t.name for t in composed))})",
            code="ambiguous_loop",
        )
    graph = build.graph
    _ = topology  # cores are validated against min_procs at schedule time
    return graph


def _scheduler_for(request: Dict[str, Any], cost):
    """Instantiate the scheduler a canonical request selects."""
    options = request["options"]
    if "workload" in request:
        from ..experiments.common import paper_group_count
        from ..ode import MethodConfig
        from ..scheduling import data_parallel_scheduler, fixed_group_scheduler

        if options.get("version", "tp") == "dp":
            return data_parallel_scheduler(cost)
        wl = request["workload"]
        cfg = MethodConfig(wl["solver"], **SOLVER_CFGS[wl["solver"]])
        return fixed_group_scheduler(
            cost, options.get("groups") or paper_group_count(cfg)
        )
    from ..scheduling import (
        AMTHAScheduler,
        LayerBasedScheduler,
        MoldableLayerScheduler,
    )

    name = request["options"].get("scheduler", "paper")
    if name == "amtha":
        return AMTHAScheduler(cost)
    if name == "moldable":
        return MoldableLayerScheduler(cost)
    return LayerBasedScheduler(cost)  # "paper" and "gsearch" alias


# ----------------------------------------------------------------------
# content-addressed identity
# ----------------------------------------------------------------------
def request_digests(request: Dict[str, Any]) -> Dict[str, str]:
    """The ``(program, topology, options)`` digest triple of a request.

    The program digest hashes the *built* task graph's
    scheduling-relevant shape (:func:`repro.obs.registry.program_digest`),
    so two DSL spellings of the same graph -- or a workload and its
    equivalent DSL -- share cache entries; topology and options reuse
    the :func:`repro.recovery.json_digest` canonical-JSON hashing.
    """
    from ..cluster.platforms import by_name
    from ..obs.registry import program_digest, topology_digest

    graph = _program_graph(request)
    platform = by_name(request["topology"]["platform"]).with_cores(
        request["topology"]["cores"]
    )
    return {
        "program": program_digest(graph),
        "topology": topology_digest(platform),
        "options": json_digest(request["options"]),
    }


def cache_key(endpoint: str, digests: Mapping[str, str]) -> str:
    """Content-addressed cache key of one request."""
    return json_digest(
        {
            "endpoint": endpoint,
            "program": digests["program"],
            "topology": digests["topology"],
            "options": digests["options"],
            "schema": "repro.serve.key/1",
        }
    )


# ----------------------------------------------------------------------
# response rendering
# ----------------------------------------------------------------------
def _finite(value: Any) -> Any:
    """Replace non-finite floats with ``None`` (strict-JSON safe)."""
    if isinstance(value, float) and not math.isfinite(value):
        return None
    if isinstance(value, dict):
        return {k: _finite(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_finite(v) for v in value]
    return value


def render_body(payload: Dict[str, Any]) -> bytes:
    """Canonical response bytes: sorted keys, no whitespace, UTF-8.

    Responses are rendered once and cached as bytes, so a cache hit is
    *byte-identical* to the cold response by construction -- the golden
    property ``tests/test_serve.py`` asserts per solver.
    """
    import json

    return (
        json.dumps(
            _finite(payload), sort_keys=True, separators=(",", ":"),
            allow_nan=False,
        ).encode()
        + b"\n"
    )


def _schedule_payload(result) -> Dict[str, Any]:
    """JSON view of a scheduling artefact (layered or timeline)."""
    scheduling = result.scheduling
    out: Dict[str, Any] = {"kind": scheduling.kind}
    if scheduling.layered is not None:
        layers: List[Dict[str, Any]] = []
        for layer in scheduling.layered.layers:
            groups = [
                {
                    "width": int(size),
                    "tasks": [
                        m.name for t in group for m in scheduling.expand_task(t)
                    ],
                }
                for group, size in zip(layer.groups, layer.group_sizes)
            ]
            layers.append({"groups": groups})
        out["layers"] = layers
    if scheduling.timeline is not None:
        out["timeline"] = [
            {
                "task": e.task.name,
                "start": float(e.start),
                "finish": float(e.finish),
                "width": len(e.cores),
            }
            for e in sorted(
                scheduling.timeline.entries, key=lambda e: (e.start, e.task.name)
            )
        ]
    return out


def compute_response(request: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one validated request; runs inside a pool worker.

    Returns an envelope ``{"body": ..., "record": ..., "seconds": ...,
    "tasks": ...}``: ``body`` is the deterministic response payload (what
    gets rendered, cached and served), ``record`` a
    :class:`~repro.obs.RunRecord` dict (timestamp zero; the service
    stamps and appends it), ``seconds`` the solver wall-clock for the
    per-tenant accounting and ``tasks`` the scheduled task count.
    Compute-side failures (e.g. an unschedulable graph) come back as
    ``{"error": {...}, "status": ...}`` envelopes instead of raising, so
    a worker process never dies on a bad request.
    """
    t0 = time.perf_counter()
    endpoint = request["endpoint"]
    try:
        digests = request_digests(request)
        if endpoint == "run":
            body, tasks = _compute_run(request, digests)
            record = None
        else:
            body, tasks, record = _compute_pipeline(request, digests)
    except RequestError as exc:
        return {"error": exc.to_dict()["error"], "status": exc.status}
    except Exception as exc:  # structured 422, never a traceback
        return {
            "error": {
                "code": "unschedulable",
                "message": f"{type(exc).__name__}: {exc}",
            },
            "status": 422,
        }
    return {
        "body": body,
        "record": record,
        "seconds": time.perf_counter() - t0,
        "tasks": tasks,
    }


def _compute_pipeline(
    request: Dict[str, Any], digests: Dict[str, str]
) -> Tuple[Dict[str, Any], int, Optional[Dict[str, Any]]]:
    """Run the scheduling pipeline for a schedule/simulate request."""
    from ..cluster.platforms import by_name
    from ..core.costmodel import CostModel
    from ..mapping.strategies import consecutive, scattered
    from ..obs.registry import record_from_result
    from ..pipeline import SchedulingPipeline

    endpoint = request["endpoint"]
    topology = request["topology"]
    options = request["options"]
    platform = by_name(topology["platform"]).with_cores(topology["cores"])
    cost = CostModel(platform)
    scheduler = _scheduler_for(request, cost)
    strategy = (
        scattered()
        if options.get("mapping", "consecutive") == "scattered"
        else consecutive()
    )
    graph = _program_graph(request)
    pipe = SchedulingPipeline(
        scheduler, strategy=strategy, simulate=endpoint == "simulate"
    )
    result = pipe.run(graph)

    body: Dict[str, Any] = {
        "schema": f"repro.serve.{endpoint}/1",
        "key": cache_key(endpoint, digests),
        "digests": dict(digests),
        "request": {
            k: request[k]
            for k in ("workload", "program", "topology", "options")
            if k in request
        },
        "scheduler": result.scheduling.scheduler,
        "cores": int(result.scheduling.nprocs),
        "tasks": len(graph),
        "predicted_makespan": float(result.predicted_makespan),
        "schedule": _schedule_payload(result),
    }
    if endpoint == "simulate":
        body["makespan"] = float(result.makespan)
        body["metrics"] = _finite(result.metrics())
        body["analysis"] = _finite(result.analysis().to_dict())
    spec: Dict[str, Any] = {
        "endpoint": endpoint,
        "options": dict(options),
        "platform": topology["platform"],
    }
    if "workload" in request:
        spec["solver"] = request["workload"]["solver"]
        spec["n"] = request["workload"]["n"]
    record = record_from_result(
        result, spec=spec, timestamp=0.0, backend="serve"
    ).to_dict()
    return body, len(graph), record


def _compute_run(
    request: Dict[str, Any], digests: Dict[str, str]
) -> Tuple[Dict[str, Any], int]:
    """Execute one functional solver step for a run request.

    Mirrors the ``--checkpoint-dir`` CLI path without the journal: the
    deterministic init graph produces the live-ins, then the step body
    executes for real on numpy arrays.  The response carries the
    content digests of every output array -- deterministic, so run
    responses cache like schedules do.
    """
    import numpy as np

    from ..ode import MethodConfig, bruss2d
    from ..ode.programs import build_ode_program
    from ..recovery import array_digest
    from ..runtime.executor import run_program

    wl = request["workload"]
    cfg = MethodConfig(wl["solver"], **SOLVER_CFGS[wl["solver"]])
    problem = bruss2d(wl["n"])
    build = build_ode_program(problem, cfg, functional=True)
    composed = build.composed_nodes()
    loop = composed[0]
    body_graph = build.body_of(loop)
    params = {p.name for p in loop.params}
    sol = next((c for c in ("eta", "eta_k", "y") if c in params), "eta")
    inputs: Dict[str, np.ndarray] = {sol: problem.y0}
    for p in loop.params:
        if p.mode.reads and p.name not in inputs:
            inputs[p.name] = np.zeros(p.elements)
    store = dict(run_program(build.graph, inputs).variables)
    run = run_program(body_graph, store)
    body = {
        "schema": "repro.serve.run/1",
        "key": cache_key("run", digests),
        "digests": dict(digests),
        "request": {
            k: request[k]
            for k in ("workload", "topology", "options")
            if k in request
        },
        "tasks": int(run.stats.tasks_executed),
        "tasks_executed": int(run.stats.tasks_executed),
        "retries": int(run.stats.retries),
        "degraded": bool(run.degraded),
        "failures": len(run.failures),
        "variables": {
            name: array_digest(arr)
            for name, arr in sorted(run.variables.items())
        },
    }
    return body, int(run.stats.tasks_executed)
