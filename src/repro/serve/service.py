"""The asyncio multi-tenant scheduling service.

:class:`ScheduleService` is the event-loop half of ``repro.serve``: it
validates requests (:mod:`repro.serve.api`), answers cache hits from the
content-addressed :class:`~repro.serve.cache.ScheduleCache` without
touching a worker, and offloads cold g-search computations to a bounded
process pool.  Three service-level guarantees live here:

* **backpressure** -- at most ``max_queue`` cold computations are
  admitted at once; past that the service answers ``429`` with a
  ``Retry-After`` hint instead of queueing unboundedly;
* **single-flight** -- concurrent identical requests (same cache key)
  share one solver invocation: the first request computes, the rest
  await the same future and are accounted as coalesced hits;
* **per-tenant accounting** -- requests, cache hits/misses, scheduled
  tasks and cumulative solver seconds per tenant, surfaced through the
  :class:`~repro.obs.MetricsRegistry` Prometheus exposition at
  ``GET /metrics``.
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from ..obs.registry import MetricsRegistry, RunRecord, RunRegistry
from . import api
from .cache import ScheduleCache

__all__ = ["Response", "ScheduleService"]


@dataclass
class Response:
    """One HTTP-shaped service answer (status, JSON body, headers)."""

    status: int
    body: bytes
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def json(self) -> Any:
        """The decoded body (test convenience)."""
        return json.loads(self.body.decode())


def _json_response(status: int, payload: Dict[str, Any], **headers: str) -> Response:
    return Response(status, api.render_body(payload), dict(headers))


def _error(status: int, code: str, message: str, **headers: str) -> Response:
    return _json_response(
        status, {"error": {"code": code, "message": message}}, **headers
    )


class ScheduleService:
    """Validates, caches, coalesces and computes scheduling requests.

    Parameters
    ----------
    cache_dir:
        Directory of the persistent response cache (``None``: in-memory
        only).
    workers:
        Worker processes for cold computations.  ``0`` uses a small
        thread pool instead -- handy for tests and for platforms
        without ``fork``.
    max_queue:
        Cold computations admitted concurrently (queued + running)
        before the service answers ``429 over_capacity``.
    registry_dir:
        When given, every computed (non-cached) schedule/simulate
        response appends its :class:`~repro.obs.RunRecord` to the
        persistent run registry under this directory.
    registry:
        The :class:`~repro.obs.MetricsRegistry` accounting lands in
        (defaults to a fresh one; pass a shared registry to co-locate
        with other exporters).
    """

    def __init__(
        self,
        cache_dir: Optional[object] = None,
        workers: int = 2,
        max_queue: int = 16,
        registry_dir: Optional[object] = None,
        registry: Optional[MetricsRegistry] = None,
        retry_after: float = 1.0,
    ) -> None:
        self.cache = ScheduleCache(cache_dir)
        self.workers = int(workers)
        self.max_queue = int(max_queue)
        self.retry_after = float(retry_after)
        self.registry = registry if registry is not None else MetricsRegistry()
        self.run_registry = (
            RunRegistry(registry_dir) if registry_dir is not None else None
        )
        self._executor: Optional[Executor] = None
        self._inflight: Dict[str, asyncio.Future] = {}
        self._jobs = 0
        #: digest memo: canonical request JSON -> (digest triple, key);
        #: deterministic, so memoizing is safe and keeps the hit path
        #: from rebuilding the task graph on every repeat request
        self._key_memo: Dict[str, Tuple[Dict[str, str], str]] = {}
        self.started = time.time()

    # ------------------------------------------------------------------
    def _pool(self) -> Executor:
        if self._executor is None:
            if self.workers <= 0:
                self._executor = ThreadPoolExecutor(
                    max_workers=2, thread_name_prefix="serve"
                )
            else:
                self._executor = ProcessPoolExecutor(max_workers=self.workers)
        return self._executor

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None

    # ------------------------------------------------------------------
    # accounting helpers
    # ------------------------------------------------------------------
    def _count_request(self, tenant: str, endpoint: str, status: int) -> None:
        self.registry.counter(
            "serve_requests_total",
            help="requests answered, by tenant/endpoint/status",
            tenant=tenant, endpoint=endpoint, status=status,
        ).inc()

    def _gauges(self) -> None:
        self.registry.gauge(
            "serve_queue_depth", help="cold computations queued or running"
        ).set(float(self._jobs))
        self.registry.gauge(
            "serve_cache_entries", help="entries in the schedule cache"
        ).set(float(len(self.cache)))

    def stats(self) -> Dict[str, Any]:
        """Flat service statistics (the ``GET /v1/stats`` payload)."""
        return {
            "schema": "repro.serve.stats/1",
            "cache": {
                "hits": self.cache.hits,
                "misses": self.cache.misses,
                "entries": len(self.cache),
                "hit_rate": self.cache.hit_rate,
                "persistent": self.cache.root is not None,
            },
            "inflight": self._jobs,
            "max_queue": self.max_queue,
            "workers": self.workers,
            "uptime_seconds": time.time() - self.started,
        }

    # ------------------------------------------------------------------
    # request handling
    # ------------------------------------------------------------------
    async def handle(
        self,
        method: str,
        path: str,
        body: bytes = b"",
        headers: Optional[Mapping[str, str]] = None,
    ) -> Response:
        """Dispatch one request; always returns a JSON :class:`Response`."""
        headers = {k.lower(): v for k, v in (headers or {}).items()}
        if path == "/healthz":
            if method != "GET":
                return _error(405, "method_not_allowed", "healthz is GET-only")
            return _json_response(200, {"status": "ok"})
        if path == "/metrics":
            if method != "GET":
                return _error(405, "method_not_allowed", "metrics is GET-only")
            self._gauges()
            return Response(
                200,
                self.registry.render_prometheus().encode(),
                {"Content-Type": "text/plain; version=0.0.4"},
            )
        if path == "/v1/stats":
            if method != "GET":
                return _error(405, "method_not_allowed", "stats is GET-only")
            return _json_response(200, self.stats())
        if path.startswith("/v1/"):
            endpoint = path[len("/v1/"):]
            if endpoint in api.ENDPOINTS:
                if method != "POST":
                    return _error(
                        405, "method_not_allowed", f"{path} is POST-only"
                    )
                return await self._handle_endpoint(endpoint, body, headers)
        return _error(404, "not_found", f"no route for {method} {path}")

    async def _handle_endpoint(
        self, endpoint: str, body: bytes, headers: Mapping[str, str]
    ) -> Response:
        tenant = "anonymous"
        try:
            if len(body) > api.MAX_BODY_BYTES:
                raise api.RequestError(
                    413, "payload_too_large",
                    f"request body exceeds {api.MAX_BODY_BYTES} bytes",
                )
            try:
                payload = json.loads(body.decode() or "{}")
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise api.RequestError(
                    400, "invalid_json", f"request body is not JSON: {exc}"
                )
            if (
                isinstance(payload, dict)
                and "tenant" not in payload
                and "x-tenant" in headers
            ):
                payload["tenant"] = headers["x-tenant"]
            request = api.validate_request(endpoint, payload)
            tenant = request["tenant"]
            response = await self._schedule_or_serve(request)
        except api.RequestError as exc:
            self._count_request(tenant, endpoint, exc.status)
            if exc.status == 429:
                self.registry.counter(
                    "serve_rejected_total",
                    help="requests rejected before computing",
                    tenant=tenant, reason="backpressure",
                ).inc()
                return _json_response(
                    429, exc.to_dict(),
                    **{"Retry-After": f"{self.retry_after:g}"},
                )
            return _json_response(exc.status, exc.to_dict())
        self._count_request(tenant, endpoint, response.status)
        return response

    async def _schedule_or_serve(self, request: Dict[str, Any]) -> Response:
        endpoint, tenant = request["endpoint"], request["tenant"]
        canonical = json.dumps(
            self._strip_tenant(request), sort_keys=True, separators=(",", ":")
        )
        t0 = time.perf_counter()

        memo = self._key_memo.get(canonical)
        if memo is None:
            loop = asyncio.get_running_loop()
            try:
                # graph building is cheap but not free; keep it off the loop
                digests = await loop.run_in_executor(
                    None, api.request_digests, self._strip_tenant(request)
                )
            except api.RequestError:
                raise
            key = api.cache_key(endpoint, digests)
            self._key_memo[canonical] = (digests, key)
        else:
            digests, key = memo

        cached = self.cache.get(key)
        if cached is not None:
            self._count_cache(tenant, endpoint, hit=True)
            self._observe_latency(tenant, endpoint, time.perf_counter() - t0)
            return Response(200, cached, {"X-Cache": "hit", "X-Cache-Key": key})

        inflight = self._inflight.get(key)
        if inflight is not None:
            body = await asyncio.shield(inflight)
            self._count_cache(tenant, endpoint, hit=True, coalesced=True)
            self._observe_latency(tenant, endpoint, time.perf_counter() - t0)
            return Response(
                200, body, {"X-Cache": "coalesced", "X-Cache-Key": key}
            )

        if self._jobs >= self.max_queue:
            raise api.RequestError(
                429, "over_capacity",
                f"{self._jobs} computations in flight (cap {self.max_queue}); "
                "retry shortly",
            )

        self._count_cache(tenant, endpoint, hit=False)
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._inflight[key] = future
        self._jobs += 1
        try:
            envelope = await loop.run_in_executor(
                self._pool(), api.compute_response, self._strip_tenant(request)
            )
            if "error" in envelope:
                exc = api.RequestError(
                    int(envelope.get("status", 422)),
                    envelope["error"].get("code", "unschedulable"),
                    envelope["error"].get("message", "computation failed"),
                )
                if not future.done():
                    future.set_exception(exc)
                    future.exception()  # consumed: avoid the never-retrieved warning
                raise exc
            body = api.render_body(envelope["body"])
            self.cache.put(key, body)
            self._account_compute(tenant, envelope)
            if not future.done():
                future.set_result(body)
        except api.RequestError:
            raise
        except Exception as exc:  # worker pool broke, not the request
            if not future.done():
                future.cancel()
            raise api.RequestError(
                500, "internal", f"{type(exc).__name__}: {exc}"
            ) from exc
        finally:
            self._jobs -= 1
            self._inflight.pop(key, None)
        self._observe_latency(tenant, endpoint, time.perf_counter() - t0)
        return Response(200, body, {"X-Cache": "miss", "X-Cache-Key": key})

    @staticmethod
    def _strip_tenant(request: Dict[str, Any]) -> Dict[str, Any]:
        """The request without its tenant: what workers and digests see.

        Tenancy is an accounting dimension, not a scheduling input --
        two tenants asking for the same schedule share one cache entry
        and one solver invocation.
        """
        return {k: v for k, v in request.items() if k != "tenant"}

    # ------------------------------------------------------------------
    def _count_cache(
        self, tenant: str, endpoint: str, hit: bool, coalesced: bool = False
    ) -> None:
        name = "serve_cache_hits_total" if hit else "serve_cache_misses_total"
        self.registry.counter(
            name,
            help="schedule-cache lookups, by tenant/endpoint",
            tenant=tenant, endpoint=endpoint,
        ).inc()
        if coalesced:
            self.registry.counter(
                "serve_coalesced_total",
                help="requests answered by an in-flight identical computation",
                tenant=tenant, endpoint=endpoint,
            ).inc()

    def _observe_latency(self, tenant: str, endpoint: str, seconds: float) -> None:
        self.registry.histogram(
            "serve_request_seconds",
            help="request latency (validation to response)",
            tenant=tenant, endpoint=endpoint,
        ).observe(seconds)

    def _account_compute(self, tenant: str, envelope: Dict[str, Any]) -> None:
        self.registry.histogram(
            "serve_solver_seconds",
            help="solver wall-clock per computed request",
            tenant=tenant,
        ).observe(float(envelope.get("seconds", 0.0)))
        self.registry.counter(
            "serve_scheduled_tasks_total",
            help="tasks scheduled on behalf of each tenant",
            tenant=tenant,
        ).inc(float(envelope.get("tasks", 0)))
        record = envelope.get("record")
        if record is not None and self.run_registry is not None:
            stamped = RunRecord.from_dict(record)
            stamped.timestamp = time.time()
            self.run_registry.append(stamped)
