"""Persistent, content-addressed schedule cache.

The cache stores fully rendered response *bytes* keyed by the request's
content digest (``cache_key`` over the program/topology/options digest
triple), so a hit serves exactly the bytes the cold computation produced
-- byte-identity is structural, not a property the solver has to
maintain.  Storage follows the
:class:`~repro.recovery.CheckpointStore` pattern: one ``<key>.json``
file per entry, written to a temporary name and atomically renamed into
place, so a crash mid-write never leaves a torn entry under its final
name and concurrent writers of the same key are idempotent.

A small in-memory LRU front (``max_memory_entries``) keeps the hot keys
out of the filesystem entirely; the on-disk tier is the durable,
restart-surviving one.
"""

from __future__ import annotations

from collections import OrderedDict
from pathlib import Path
from typing import Optional

__all__ = ["ScheduleCache"]

_KEY_CHARS = set("0123456789abcdef")


class ScheduleCache:
    """Two-tier (memory + disk) cache of rendered response bytes.

    ``root=None`` keeps the cache purely in-memory (tests, ephemeral
    servers); with a directory, entries persist across restarts and are
    shared by every server pointed at the same ``--cache-dir``.
    """

    def __init__(
        self, root: Optional[object] = None, max_memory_entries: int = 256
    ) -> None:
        self.root = Path(root) if root is not None else None
        self.max_memory_entries = int(max_memory_entries)
        self._memory: "OrderedDict[str, bytes]" = OrderedDict()
        #: lookups answered from memory or disk
        self.hits = 0
        #: lookups that found nothing
        self.misses = 0
        #: entries written by this instance
        self.writes = 0

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        assert self.root is not None
        return self.root / f"{key}.json"

    @staticmethod
    def _check_key(key: str) -> str:
        if not key or not set(key) <= _KEY_CHARS:
            raise ValueError(f"cache key must be a hex digest, got {key!r}")
        return key

    def _remember(self, key: str, body: bytes) -> None:
        self._memory[key] = body
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[bytes]:
        """The cached response bytes for ``key``, or ``None``."""
        key = self._check_key(key)
        body = self._memory.get(key)
        if body is not None:
            self._memory.move_to_end(key)
            self.hits += 1
            return body
        if self.root is not None:
            path = self._path(key)
            if path.exists():
                body = path.read_bytes()
                self._remember(key, body)
                self.hits += 1
                return body
        self.misses += 1
        return None

    def put(self, key: str, body: bytes) -> None:
        """Store ``body`` under ``key`` (atomic tmp-rename on disk)."""
        key = self._check_key(key)
        self._remember(key, bytes(body))
        if self.root is None:
            return
        path = self._path(key)
        if path.exists():
            return  # content-addressed: an existing entry is identical
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp-{id(self)}")
        tmp.write_bytes(body)
        tmp.replace(path)
        self.writes += 1

    def __contains__(self, key: str) -> bool:
        key = self._check_key(key)
        if key in self._memory:
            return True
        return self.root is not None and self._path(key).exists()

    def __len__(self) -> int:
        if self.root is not None and self.root.exists():
            disk = {p.stem for p in self.root.glob("*.json")}
            return len(disk | set(self._memory))
        return len(self._memory)

    @property
    def hit_rate(self) -> float:
        """Hits over lookups (0.0 before the first lookup)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
