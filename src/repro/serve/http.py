"""Minimal asyncio HTTP/1.1 front end for the scheduling service.

The repo deliberately carries no third-party web framework: this module
speaks just enough HTTP/1.1 over :func:`asyncio.start_server` streams to
serve the JSON API -- request line, headers, ``Content-Length`` bodies,
keep-alive -- with hard limits on header and body sizes.  Everything
response-shaped comes from
:meth:`~repro.serve.service.ScheduleService.handle`, so the protocol
layer stays dumb and the service layer stays socket-free (and therefore
unit-testable without a port).

:class:`ServerThread` runs a server on a background thread with its own
event loop -- the harness tests, the load-generator benchmark and
embedding applications use it to get a live port without blocking.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Dict, Optional, Tuple

from .service import Response, ScheduleService

__all__ = ["HttpServer", "ServerThread"]

_MAX_HEADER_BYTES = 16 * 1024
_MAX_HEADERS = 100
_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    505: "HTTP Version Not Supported",
}


class HttpServer:
    """One asyncio HTTP server bound to a :class:`ScheduleService`."""

    def __init__(
        self,
        service: ScheduleService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port  # 0: pick an ephemeral port, see .start()
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    async def start(self) -> "HttpServer":
        """Bind and start accepting; resolves the actual port."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def serve_forever(self) -> None:
        """Block serving until cancelled."""
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        """Stop accepting and close the listening sockets."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    @property
    def url(self) -> str:
        """Base URL of the bound server."""
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve one connection: a keep-alive loop of request/response."""
        try:
            while True:
                parsed = await self._read_request(reader)
                if parsed is None:
                    break
                method, path, headers, body, error = parsed
                if error is not None:
                    status, message = error
                    response = Response(
                        status,
                        (
                            '{"error":{"code":"protocol_error","message":'
                            + _json_string(message)
                            + "}}\n"
                        ).encode(),
                    )
                    keep_alive = False
                else:
                    response = await self.service.handle(
                        method, path, body, headers
                    )
                    keep_alive = (
                        headers.get("connection", "keep-alive").lower()
                        != "close"
                    )
                await self._write_response(writer, response, keep_alive)
                if not keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError, asyncio.IncompleteReadError):
            pass  # client went away mid-exchange
        except asyncio.CancelledError:
            pass  # server shutting down with the connection open
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        """Parse one request; ``None`` on clean EOF, error tuple on junk."""
        try:
            request_line = await reader.readline()
        except (ValueError, asyncio.LimitOverrunError):
            return "", "", {}, b"", (431, "request line too long")
        if not request_line:
            return None
        parts = request_line.decode("latin-1").strip().split()
        if len(parts) != 3:
            return "", "", {}, b"", (400, "malformed request line")
        method, path, version = parts
        if not version.startswith("HTTP/1."):
            return "", "", {}, b"", (505, f"unsupported {version}")
        headers: Dict[str, str] = {}
        total = len(request_line)
        while True:
            line = await reader.readline()
            total += len(line)
            if total > _MAX_HEADER_BYTES or len(headers) > _MAX_HEADERS:
                return method, path, headers, b"", (431, "headers too large")
            if line in (b"\r\n", b"\n", b""):
                break
            name, sep, value = line.decode("latin-1").partition(":")
            if sep:
                headers[name.strip().lower()] = value.strip()
        body = b""
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            return method, path, headers, b"", (400, "bad Content-Length")
        if length < 0:
            return method, path, headers, b"", (400, "bad Content-Length")
        from .api import MAX_BODY_BYTES

        if length > MAX_BODY_BYTES:
            return method, path, headers, b"", (413, "request body too large")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError:
                return method, path, headers, b"", (400, "truncated body")
        return method, path, headers, body, None

    @staticmethod
    async def _write_response(
        writer: asyncio.StreamWriter, response: Response, keep_alive: bool
    ) -> None:
        reason = _STATUS_TEXT.get(response.status, "Unknown")
        headers = {
            "Content-Type": "application/json",
            **response.headers,
            "Content-Length": str(len(response.body)),
            "Connection": "keep-alive" if keep_alive else "close",
        }
        head = f"HTTP/1.1 {response.status} {reason}\r\n" + "".join(
            f"{k}: {v}\r\n" for k, v in headers.items()
        )
        writer.write(head.encode("latin-1") + b"\r\n" + response.body)
        await writer.drain()


def _json_string(text: str) -> str:
    """A JSON string literal of ``text`` (for hand-built error bodies)."""
    import json

    return json.dumps(text)


class ServerThread:
    """A live server on a daemon thread with its own event loop.

    >>> handle = ServerThread(ScheduleService(workers=0)).start()
    >>> handle.url
    'http://127.0.0.1:...'
    >>> handle.stop()

    The benchmark and the socket-level tests use this to exercise the
    real wire path without managing subprocesses.
    """

    def __init__(
        self,
        service: Optional[ScheduleService] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service if service is not None else ScheduleService()
        self.server = HttpServer(self.service, host, port)
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()

    def start(self, timeout: float = 10.0) -> "ServerThread":
        """Boot the loop thread; returns once the port is bound."""
        if self._thread is not None:
            return self
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("server thread did not come up in time")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)

        async def boot():
            await self.server.start()
            self._ready.set()

        loop.run_until_complete(boot())
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.server.stop())
            pending = [t for t in asyncio.all_tasks(loop) if not t.done()]
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    @property
    def url(self) -> str:
        """Base URL of the running server."""
        return self.server.url

    def stop(self) -> None:
        """Stop the loop, join the thread, shut the worker pool down."""
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10)
        self.service.close()
        self._thread = None
        self._loop = None
