"""Terminal-side Gantt rendering of traces and layered schedules.

The simulator's :meth:`~repro.sim.trace.ExecutionTrace.gantt_lines` gives
a bare per-node strip; this module renders the richer chart the
``repro.obs gantt`` subcommand prints:

* a time axis in milliseconds,
* one row per physical core (or per node), upper-case letters for the
  computation part of a task slice, lower-case for its communication
  tail, ``~`` for re-distribution waits inside otherwise idle gaps,
* a legend mapping letters to task names with start/finish times,
* for layered schedules, per-layer group bars showing the load balance
  the scheduler achieved.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Sequence

__all__ = ["render_trace", "render_layers", "render_analysis_bars"]


def _letter(i: int) -> str:
    return chr(ord("A") + i % 26)


def _axis(span: float, width: int, indent: int) -> List[str]:
    """Two header lines: tick marks and millisecond labels."""
    ticks = [0.0, 0.25, 0.5, 0.75, 1.0]
    marks = [" "] * width
    labels = [" "] * (width + 12)
    for f in ticks:
        x = min(int(f * (width - 1)), width - 1)
        marks[x] = "|"
        text = f"{f * span * 1e3:.3g}"
        for j, ch in enumerate(text):
            if x + j < len(labels):
                labels[x + j] = ch
    pad = " " * indent
    return [pad + " " + "".join(labels[:width]) + " [ms]", pad + " " + "".join(marks)]


def render_trace(
    trace,
    width: int = 72,
    by: str = "core",
    legend: bool = True,
    max_rows: int = 64,
) -> str:
    """ASCII Gantt chart of an :class:`~repro.sim.trace.ExecutionTrace`.

    ``by`` is ``"core"`` (one row per physical core) or ``"node"`` (one
    row per compute node).  Upper-case cells are computation, lower-case
    communication, ``~`` re-distribution wait, ``!`` fault overhead
    (failed attempts + backoff of injected faults), blank idle.
    """
    if by not in ("core", "node"):
        raise ValueError("by must be 'core' or 'node'")
    span = trace.makespan
    if not (math.isfinite(span) and span > 0):
        # zero-duration traces (and NaN-polluted ones) still render: every
        # slice collapses onto the first column instead of crashing cell()
        span = 1.0
    entries = sorted(trace.entries, key=lambda e: (e.start, e.task.name))
    letters = {e.task: _letter(i) for i, e in enumerate(entries)}

    used = {c for e in entries for c in e.cores} | {
        c for e in entries for c in getattr(e, "backup_cores", ())
    }
    if by == "node":
        keys = sorted({c.node for c in used})
        key_of = lambda c: c.node
        label = lambda k: f"node {k:4d}"
    else:
        keys = sorted(used)
        key_of = lambda c: c
        label = lambda k: f"core {k.label:>7s}"

    def cell(t: float) -> int:
        if not math.isfinite(t) or t < 0:
            # NaN-adjacent timestamps degrade to the chart origin; they
            # must not crash int() or produce negative column indices
            t = 0.0
        return min(int(t / span * (width - 1)), width - 1)

    grid: Dict[Any, List[str]] = {k: [" "] * width for k in keys}
    for e in entries:
        a = cell(e.start)
        overhead = getattr(e, "fault_overhead", 0.0)
        comp_start = e.start + overhead
        f = max(a + 1, cell(comp_start)) if overhead > 0 else a
        comp_end = comp_start + e.comp_time
        b = max(f + 1, cell(comp_end))
        c_end = max(b, cell(e.finish))
        ch = letters[e.task]
        for core in e.cores:
            row = grid[key_of(core)]
            if e.redist_wait > 0:
                for x in range(cell(max(0.0, e.start - e.redist_wait)), a):
                    if row[x] == " ":
                        row[x] = "~"
            for x in range(a, min(f, width)):
                row[x] = "!"
            for x in range(f, min(b, width)):
                row[x] = ch
            for x in range(b, min(c_end, width)):
                row[x] = ch.lower()
        # speculative backup attempt on its idle cores
        if getattr(e, "backup_cores", ()):
            ba = cell(e.backup_start)
            bb = max(ba + 1, cell(e.finish))
            for core in e.backup_cores:
                row = grid[key_of(core)]
                for x in range(ba, min(bb, width)):
                    if row[x] == " ":
                        row[x] = "+"

    indent = len(label(keys[0])) if keys else 8
    lines = _axis(span, width, indent)
    shown = keys[:max_rows]
    for k in shown:
        lines.append(f"{label(k)} |{''.join(grid[k])}|")
    if len(keys) > len(shown):
        lines.append(f"... {len(keys) - len(shown)} more rows (raise max_rows)")
    if legend:
        lines.append("")
        lines.append(
            "legend (UPPER = comp, lower = comm, ~ = redist wait, "
            "! = fault overhead, + = speculative backup):"
        )
        for e in entries[: 2 * 26]:
            spec = getattr(e, "speculation", "")
            lines.append(
                f"  {letters[e.task]}  {e.task.name:<24s} "
                f"[{e.start * 1e3:9.3f}, {e.finish * 1e3:9.3f}] ms  "
                f"x{len(e.cores)} cores"
                + (f"  [spec {spec}]" if spec else "")
            )
        if len(entries) > 2 * 26:
            lines.append(f"  ... {len(entries) - 2 * 26} more tasks")
    return "\n".join(lines)


def render_layers(layered, cost, width: int = 48) -> str:
    """Per-layer group bars of a layered schedule.

    Each group of each layer gets one bar proportional to its summed
    symbolic execution time; the longest group of a layer sets the
    layer's span, so ragged bars show intra-layer imbalance directly.
    """
    lines: List[str] = [
        f"layered schedule: {layered.num_layers} layers on {layered.nprocs} cores"
    ]
    for li, layer in enumerate(layered.layers):
        loads: List[float] = []
        for gi, group in enumerate(layer.groups):
            q = layer.group_sizes[gi]
            load = 0.0
            for node in group:
                for m in layered.expand(node):
                    load += cost.tsymb(m, m.clamp_procs(q))
            loads.append(load)
        longest = max(loads) if loads else 0.0
        lines.append(f" layer {li}  ({len(layer.tasks)} tasks, {layer.num_groups} groups)")
        for gi, load in enumerate(loads):
            frac = load / longest if longest > 0 else 0.0
            bar = "#" * max(1, int(frac * width)) if load > 0 else ""
            names = ", ".join(t.name for t in layer.groups[gi][:3])
            if len(layer.groups[gi]) > 3:
                names += ", ..."
            lines.append(
                f"   g{gi} {layer.group_sizes[gi]:4d}c |{bar:<{width}s}| "
                f"{load * 1e3:9.3f} ms  {names}"
            )
    return "\n".join(lines)


def render_analysis_bars(analysis, width: int = 40) -> str:
    """Utilization bars of a :class:`~repro.obs.metrics.ScheduleAnalysis`."""
    lines = ["per-core utilization:"]
    for c in analysis.cores:
        filled = int(c.busy_fraction * width)
        bar = "#" * filled + "." * (width - filled)
        lines.append(f"  core {c.label:>7s} |{bar}| {c.busy_fraction * 100:6.2f} %")
    return "\n".join(lines)
