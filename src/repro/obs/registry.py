"""Labeled metrics registry and the persistent cross-run registry.

Two registries live here, one in-memory and one on disk:

* :class:`MetricsRegistry` -- labeled counters, gauges and histograms
  (``registry.gauge("backend_tasks_done", backend="pool")``) wrapping
  the label-less :class:`~repro.obs.metrics.Histogram` /
  :class:`~repro.obs.metrics.Gauge` primitives, with a Prometheus
  text-exposition renderer (:meth:`MetricsRegistry.render_prometheus`).
  Backends publish live heartbeat gauges through it (tasks done/total,
  per-worker busy fraction, speculation in flight) via
  :meth:`~repro.obs.Instrumentation.publish`.
* :class:`RunRegistry` -- an append-only JSONL store of structured
  :class:`RunRecord` entries, one per pipeline/runtime run, keyed by
  the content digests of the program, the topology and the run options
  (reusing the :mod:`repro.recovery` digest machinery).  The records
  are deterministic: two identical runs produce byte-identical JSON
  modulo the injected ``timestamp``.

``python -m repro.obs history`` lists recorded runs, ``trend`` detects
metric drift across the last N records of a matching digest key, and
``prom`` renders a run's registry in Prometheus text format.
"""

from __future__ import annotations

import json
import math
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..recovery.checkpoint import json_digest
from .metrics import Gauge, Histogram

__all__ = [
    "Counter",
    "MetricsRegistry",
    "RunRecord",
    "RunRegistry",
    "program_digest",
    "topology_digest",
    "options_digest",
    "record_from_result",
    "publish_result",
]

#: label key type: a canonically sorted tuple of (name, value) pairs
LabelKey = Tuple[Tuple[str, str], ...]


class Counter:
    """A monotonically increasing metric (Prometheus ``counter``)."""

    def __init__(self, name: str = "", value: float = 0.0) -> None:
        self.name = name
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError("counters only go up; use a gauge instead")
        self.value += float(amount)

    def to_dict(self) -> Dict[str, float]:
        """Export the current value."""
        return {"value": self.value}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Counter({self.name!r}, {self.value:g})"


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    """Canonical, hashable form of a label set."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Sanitize a metric name into the Prometheus charset."""
    name = _NAME_RE.sub("_", name)
    if name and name[0].isdigit():
        name = "_" + name
    return name


def _prom_escape(value: str) -> str:
    """Escape a label value for the text exposition format."""
    return value.replace("\\", r"\\").replace('"', r'\"').replace("\n", r"\n")


def _prom_labels(labels: LabelKey, extra: Tuple[Tuple[str, str], ...] = ()) -> str:
    """Render a label set as ``{k="v",...}`` (empty string for none)."""
    pairs = tuple(labels) + tuple(extra)
    if not pairs:
        return ""
    body = ",".join(f'{_prom_name(k)}="{_prom_escape(v)}"' for k, v in pairs)
    return "{" + body + "}"


def _prom_value(value: float) -> str:
    """Render a sample value (Prometheus spells non-finite values out)."""
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(float(value))


class MetricsRegistry:
    """Families of labeled counters, gauges and histograms.

    A *family* is one metric name; each distinct label set within it is
    a separate child metric.  Children are created on first access and
    returned on every later access with the same labels, so callers can
    freely write ``registry.counter("runs_total", solver="irk").inc()``
    in hot paths.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Dict[LabelKey, Counter]] = {}
        self._gauges: Dict[str, Dict[LabelKey, Gauge]] = {}
        self._histograms: Dict[str, Dict[LabelKey, Histogram]] = {}
        self._help: Dict[str, str] = {}

    # ------------------------------------------------------------------
    def _family(self, store, cls, name: str, help: str, labels) -> Any:
        if help and name not in self._help:
            self._help[name] = help
        family = store.setdefault(name, {})
        key = _label_key(labels)
        child = family.get(key)
        if child is None:
            child = cls(name)
            family[key] = child
        return child

    def counter(self, name: str, help: str = "", **labels: Any) -> Counter:
        """The counter ``name`` with the given label set."""
        return self._family(self._counters, Counter, name, help, labels)

    def gauge(self, name: str, help: str = "", **labels: Any) -> Gauge:
        """The gauge ``name`` with the given label set."""
        return self._family(self._gauges, Gauge, name, help, labels)

    def histogram(self, name: str, help: str = "", **labels: Any) -> Histogram:
        """The histogram ``name`` with the given label set."""
        return self._family(self._histograms, Histogram, name, help, labels)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Export every family as ``name -> [{labels, ...metric}, ...]``."""
        out: Dict[str, Any] = {}
        for kind, store in (
            ("counters", self._counters),
            ("gauges", self._gauges),
            ("histograms", self._histograms),
        ):
            section: Dict[str, List[Dict[str, Any]]] = {}
            for name, family in sorted(store.items()):
                section[name] = [
                    {"labels": dict(key), **metric.to_dict()}
                    for key, metric in sorted(family.items())
                ]
            if section:
                out[kind] = section
        return out

    def render_prometheus(self) -> str:
        """Render every metric in the Prometheus text exposition format.

        Counters and gauges render one sample per label set; histograms
        render as *summaries* (``{quantile="..."}`` samples plus
        ``_sum``/``_count``) because observations are kept exactly and
        quantiles are computed client-side.
        """
        lines: List[str] = []

        def header(name: str, prom: str, kind: str) -> None:
            help_text = self._help.get(name)
            if help_text:
                lines.append(f"# HELP {prom} {help_text}")
            lines.append(f"# TYPE {prom} {kind}")

        for name, family in sorted(self._counters.items()):
            prom = _prom_name(name)
            header(name, prom, "counter")
            for key, c in sorted(family.items()):
                lines.append(f"{prom}{_prom_labels(key)} {_prom_value(c.value)}")
        for name, family in sorted(self._gauges.items()):
            prom = _prom_name(name)
            header(name, prom, "gauge")
            for key, g in sorted(family.items()):
                lines.append(f"{prom}{_prom_labels(key)} {_prom_value(g.value)}")
        for name, family in sorted(self._histograms.items()):
            prom = _prom_name(name)
            header(name, prom, "summary")
            for key, h in sorted(family.items()):
                for q, value in (
                    ("0.5", h.p50),
                    ("0.9", h.p90),
                    ("0.99", h.p99),
                ):
                    if h.count:
                        lines.append(
                            f"{prom}{_prom_labels(key, (('quantile', q),))} "
                            f"{_prom_value(value)}"
                        )
                lines.append(f"{prom}_sum{_prom_labels(key)} {_prom_value(h.total)}")
                lines.append(f"{prom}_count{_prom_labels(key)} {h.count}")
        return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# content digests of a run's identity
# ----------------------------------------------------------------------
def program_digest(graph) -> str:
    """Content digest of an M-task graph's *scheduling-relevant* shape.

    Hashes every task's name, work, processor bounds, synchronisation
    points, collective specs and parameter shapes plus the edge list --
    everything the cost model and the scheduler see.  Task bodies
    (``func``) are excluded: two builds of the same program digest
    identically even though their closures differ.
    """
    tasks = sorted(graph.topological_order(), key=lambda t: t.name)
    payload = {
        "name": getattr(graph, "name", ""),
        "tasks": [
            {
                "name": t.name,
                "work": t.work,
                "min_procs": t.min_procs,
                "max_procs": t.max_procs,
                "sync_points": t.sync_points,
                "comm": [
                    [c.op, c.total_elements, c.itemsize, c.count, c.scope,
                     c.task_parallel_only]
                    for c in t.comm
                ],
                "params": [
                    [p.name, str(p.mode), p.elements, p.itemsize]
                    for p in t.params
                ],
            }
            for t in tasks
        ],
        "edges": sorted((u.name, v.name) for u, v, _ in graph.edges()),
    }
    return json_digest(payload)


def topology_digest(machine_or_platform) -> str:
    """Content digest of the target machine's architecture tree."""
    machine = getattr(machine_or_platform, "machine", machine_or_platform)
    payload = {
        "name": machine.name,
        "total_cores": machine.total_cores,
        "node_shapes": [list(s) for s in machine.node_shapes],
    }
    return json_digest(payload)


def options_digest(options: Dict[str, Any]) -> str:
    """Content digest of the run-options dict (solver, mapping, flags)."""
    return json_digest(options or {})


# ----------------------------------------------------------------------
# run records
# ----------------------------------------------------------------------
@dataclass
class RunRecord:
    """One structured, persisted record of a pipeline/runtime run.

    Every field except ``timestamp`` is derived deterministically from
    the run, so two identical runs serialize byte-identically modulo the
    injected timestamp (the property the registry round-trip test
    asserts).  The digest triple ``(program, topology, options)`` keys
    comparable runs for drift detection.
    """

    program: str
    topology: str
    options: str
    solver: str = ""
    scheduler: str = ""
    backend: str = "sim"
    platform: str = ""
    cores: int = 0
    tasks: int = 0
    makespan: float = 0.0
    predicted_makespan: float = 0.0
    metrics: Dict[str, float] = field(default_factory=dict)
    analysis: Dict[str, Any] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    timestamp: float = 0.0
    schema: str = "repro.obs.runrecord/1"

    @property
    def key(self) -> str:
        """Short digest-triple key grouping comparable runs."""
        return f"{self.program[:12]}-{self.topology[:12]}-{self.options[:12]}"

    def to_dict(self) -> Dict[str, Any]:
        """Export every field as a JSON-serialisable dict."""
        return {
            "schema": self.schema,
            "key": self.key,
            "program": self.program,
            "topology": self.topology,
            "options": self.options,
            "solver": self.solver,
            "scheduler": self.scheduler,
            "backend": self.backend,
            "platform": self.platform,
            "cores": self.cores,
            "tasks": self.tasks,
            "makespan": self.makespan,
            "predicted_makespan": self.predicted_makespan,
            "metrics": dict(self.metrics),
            "analysis": dict(self.analysis),
            "counters": dict(self.counters),
            "timestamp": self.timestamp,
        }

    def to_json(self) -> str:
        """Canonical single-line JSON (sorted keys, no whitespace)."""
        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":"), default=str
        )

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunRecord":
        """Rebuild a record from its :meth:`to_dict` payload."""
        known = {
            k: payload[k]
            for k in (
                "program", "topology", "options", "solver", "scheduler",
                "backend", "platform", "cores", "tasks", "makespan",
                "predicted_makespan", "metrics", "analysis", "counters",
                "timestamp", "schema",
            )
            if k in payload
        }
        return cls(**known)


def record_from_result(
    result,
    *,
    timestamp: float,
    spec: Optional[Dict[str, Any]] = None,
    backend: Optional[str] = None,
) -> RunRecord:
    """Build a :class:`RunRecord` from a pipeline run.

    ``result`` is a :class:`~repro.pipeline.PipelineResult`; ``spec`` the
    CLI/run option dict folded into the options digest; ``timestamp``
    must be injected by the caller so the record itself stays a pure
    function of the run.  ``backend`` labels what executed the run
    (``"sim"`` for simulated pipelines, a backend name for functional
    runs) and defaults to the spec's ``backend`` entry.
    """
    spec = dict(spec or {})
    spec.pop("recovery", None)  # wall-clock-free options only
    trace = result.trace
    if trace is not None:
        topo = topology_digest(trace.machine)
    else:
        topo = json_digest({"cores": result.scheduling.nprocs})
    opts = dict(spec)
    opts["strategy"] = result.meta.get("strategy", "")
    return RunRecord(
        program=program_digest(result.graph),
        topology=topo,
        options=options_digest(opts),
        solver=str(spec.get("solver", "")),
        scheduler=result.scheduling.scheduler or "",
        backend=backend or str(spec.get("backend", "sim")),
        platform=str(spec.get("platform", "")),
        cores=int(result.scheduling.nprocs),
        tasks=len(result.graph),
        makespan=float(result.makespan),
        predicted_makespan=float(result.predicted_makespan),
        metrics=result.metrics(),
        analysis=result.analysis().to_dict() if trace is not None else {},
        counters={k: float(v) for k, v in sorted(result.obs.counters.items())},
        timestamp=float(timestamp),
    )


def publish_result(registry: MetricsRegistry, result, **labels: Any) -> None:
    """Publish a pipeline run's summary metrics into ``registry``.

    Every entry of ``result.metrics()`` becomes a labeled gauge
    ``repro_run_<metric>`` and every instrumentation histogram a labeled
    summary ``repro_<histogram>``; counters land in
    ``repro_<counter>_total``.  Used by ``python -m repro.obs prom``.
    """
    for name, value in sorted(result.metrics().items()):
        registry.gauge(f"repro_run_{name}", **labels).set(value)
    for name, hist in sorted(result.obs.histograms.items()):
        target = registry.histogram(f"repro_{name}", **labels)
        for value in hist.values:
            target.observe(value)
    for name, value in sorted(result.obs.counters.items()):
        counter = registry.counter(f"repro_{name}_total", **labels)
        counter.value = float(value)


# ----------------------------------------------------------------------
# the persistent run registry
# ----------------------------------------------------------------------
class RunRegistry:
    """Append-only JSONL store of :class:`RunRecord` entries.

    One record per line under ``<root>/runs.jsonl``; loading tolerates a
    torn final line (the same contract as the recovery journal), so a
    run killed mid-append never corrupts the history.
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.path = self.root / "runs.jsonl"

    def append(self, record: RunRecord) -> Path:
        """Append one record; returns the registry file path."""
        self.root.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as fh:
            fh.write(record.to_json() + "\n")
        return self.path

    def load(self) -> List[Dict[str, Any]]:
        """All stored records as dicts, oldest first (torn tail skipped)."""
        if not self.path.exists():
            return []
        records: List[Dict[str, Any]] = []
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # torn final line of a killed append
        return records

    def __len__(self) -> int:
        return len(self.load())

    def history(
        self, key: Optional[str] = None, last: Optional[int] = None
    ) -> List[Dict[str, Any]]:
        """Stored records, optionally filtered by digest-key prefix.

        ``key`` matches the record's digest-triple ``key`` or any of the
        three full digests by prefix; ``last`` keeps only the N most
        recent matches (still oldest first).
        """
        records = self.load()
        if key:
            records = [
                r
                for r in records
                if str(r.get("key", "")).startswith(key)
                or str(r.get("program", "")).startswith(key)
                or str(r.get("topology", "")).startswith(key)
                or str(r.get("options", "")).startswith(key)
            ]
        if last is not None and last >= 0:
            # guard the Python slicing pitfall: records[-0:] is the whole
            # list, but "the 0 most recent records" must be none at all
            records = records[-last:] if last > 0 else []
        return records

    def trend(
        self,
        metric: str = "makespan",
        key: Optional[str] = None,
        last: int = 10,
        threshold: float = 1.25,
    ) -> Dict[str, Any]:
        """Detect drift of ``metric`` across the last ``last`` records.

        Compares the latest value against the median of the earlier
        window (records matching ``key``, newest ``last`` of them); the
        ratio is oriented via the diff gate's metric directions so that
        values above 1.0 are worse.  Returns a summary dict with
        ``drifted`` set when the ratio exceeds ``threshold``; fewer than
        two comparable records -- a single-record registry, an empty
        window (``last <= 0``), or records whose metric is missing or
        non-finite (counted in ``skipped``) -- yield ``count < 2`` and
        no verdict, never a drift report.
        """
        def value_of(record: Dict[str, Any]) -> Optional[float]:
            v = record.get(metric, record.get("metrics", {}).get(metric))
            if isinstance(v, bool) or not isinstance(v, (int, float)):
                return None
            return float(v) if math.isfinite(v) else None

        rows = [
            (r.get("timestamp", 0.0), value_of(r))
            for r in self.history(key=key, last=last)
        ]
        values = [v for _, v in rows if v is not None]
        out: Dict[str, Any] = {
            "metric": metric,
            "key": key,
            "count": len(values),
            "skipped": len(rows) - len(values),
            "values": values,
            "threshold": threshold,
        }
        if len(values) < 2:
            return out
        latest = values[-1]
        earlier = sorted(values[:-1])
        mid = len(earlier) // 2
        if len(earlier) % 2:
            baseline = earlier[mid]
        else:
            baseline = 0.5 * (earlier[mid - 1] + earlier[mid])
        from .cli import _direction  # lazy: cli imports this module lazily too

        direction = _direction(metric)
        if direction == "higher":
            worse, better = baseline, latest
        elif direction == "lower":
            worse, better = latest, baseline
        else:  # unknown direction: any relative change counts
            worse, better = max(latest, baseline), min(latest, baseline)
        if better == 0.0:
            ratio = 1.0 if worse == 0.0 else float("inf")
        else:
            ratio = worse / better
        out.update(
            latest=latest,
            baseline=baseline,
            ratio=ratio,
            direction=direction or "any",
            drifted=ratio > threshold,
        )
        return out
