"""Metrics primitives and derived schedule analytics.

Two layers live here:

* **primitives** -- :class:`Histogram` (streaming value collector with
  p50/p90/p99 summaries) and :class:`Gauge` (last-written value), the
  vocabulary :class:`~repro.obs.Instrumentation` exposes via
  :meth:`~repro.obs.Instrumentation.observe`;
* **derived analytics** -- :class:`ScheduleAnalysis`, computed by
  :func:`analyze` from any simulated pipeline run: per-core busy/idle/
  redist-wait fractions, per-layer load imbalance, the critical-path
  share of the makespan and the group-size distribution the scheduler
  chose.

Everything is dependency-free and duck-typed against the pipeline's
artefacts (``PipelineResult``, ``ExecutionTrace``, ``LayeredSchedule``)
so the module can be imported from anywhere in the package without
cycles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence

__all__ = ["Histogram", "Gauge", "CoreUsage", "LayerBalance", "ScheduleAnalysis", "analyze"]


class Histogram:
    """Streaming collection of numeric observations with percentiles.

    Values are kept exactly (runs here observe at most a few thousand
    task durations); percentiles use linear interpolation between order
    statistics, matching ``numpy.percentile``'s default.
    """

    def __init__(self, name: str = "", values: Iterable[float] = ()) -> None:
        self.name = name
        self.values: List[float] = [float(v) for v in values]
        self._sorted: Optional[List[float]] = None

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.values.append(float(value))
        self._sorted = None

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def total(self) -> float:
        return sum(self.values)

    @property
    def mean(self) -> float:
        return self.total / len(self.values) if self.values else 0.0

    @property
    def min(self) -> float:
        """Smallest observation; ``NaN`` when empty.  An empty histogram
        has no extrema -- reporting ``0.0`` made the diff gate compare
        fabricated zeros (and flag them as regressions once a value
        arrived)."""
        return min(self.values) if self.values else math.nan

    @property
    def max(self) -> float:
        """Largest observation; ``NaN`` when empty (see :attr:`min`)."""
        return max(self.values) if self.values else math.nan

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0..100), linearly interpolated."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self.values:
            return 0.0
        if self._sorted is None:
            self._sorted = sorted(self.values)
        xs = self._sorted
        if len(xs) == 1:
            return xs[0]
        rank = p / 100.0 * (len(xs) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(xs) - 1)
        frac = rank - lo
        return xs[lo] * (1.0 - frac) + xs[hi] * frac

    @property
    def p50(self) -> float:
        return self.percentile(50)

    @property
    def p90(self) -> float:
        return self.percentile(90)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    def to_dict(self) -> Dict[str, float]:
        # an empty histogram exports only its count: absent stats cannot
        # be mistaken for observed zeros by downstream diffing
        """Export count and order statistics (empty: count only)."""
        if not self.values:
            return {"count": 0}
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Histogram({self.name!r}, n={self.count}, mean={self.mean:g}, "
            f"p50={self.p50:g}, p99={self.p99:g})"
        )


class Gauge:
    """A metric that holds its last-written value."""

    def __init__(self, name: str = "", value: float = 0.0) -> None:
        self.name = name
        self.value = float(value)

    def set(self, value: float) -> None:
        """Overwrite the gauge with a new value."""
        self.value = float(value)

    def to_dict(self) -> Dict[str, float]:
        """Export the current value."""
        return {"value": self.value}

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Gauge({self.name!r}, {self.value:g})"


# ----------------------------------------------------------------------
# Derived schedule analytics
# ----------------------------------------------------------------------
@dataclass
class CoreUsage:
    """Busy/idle accounting of one physical core over a run."""

    label: str
    busy: float
    idle: float
    redist_wait: float
    tasks: int

    @property
    def busy_fraction(self) -> float:
        span = self.busy + self.idle
        return self.busy / span if span > 0 else 0.0

    def to_dict(self) -> Dict[str, Any]:
        """Export per-group utilisation fields as a plain dict."""
        return {
            "label": self.label,
            "busy": self.busy,
            "idle": self.idle,
            "redist_wait": self.redist_wait,
            "tasks": self.tasks,
            "busy_fraction": self.busy_fraction,
        }


@dataclass
class LayerBalance:
    """Load imbalance of one layer of the layered schedule."""

    index: int
    tasks: int
    groups: int
    #: per-group busy core-seconds accumulated from the trace
    group_busy: List[float]

    @property
    def imbalance(self) -> float:
        """``max / mean`` of per-group busy time (1.0 = perfectly even)."""
        loads = [l for l in self.group_busy]
        if not loads:
            return 1.0
        mean = sum(loads) / len(loads)
        return max(loads) / mean if mean > 0 else 1.0

    def to_dict(self) -> Dict[str, Any]:
        """Export per-layer fields as a plain dict."""
        return {
            "index": self.index,
            "tasks": self.tasks,
            "groups": self.groups,
            "group_busy": list(self.group_busy),
            "imbalance": self.imbalance,
        }


@dataclass
class ScheduleAnalysis:
    """Derived analytics of one simulated pipeline run.

    Produced by :func:`analyze`; everything is computed from the
    :class:`~repro.sim.trace.ExecutionTrace` (ground truth for timing)
    plus, when available, the layered schedule (for group structure).
    """

    makespan: float
    total_cores: int
    cores: List[CoreUsage] = field(default_factory=list)
    layers: List[LayerBalance] = field(default_factory=list)
    critical_path: float = 0.0
    group_size_distribution: Dict[int, int] = field(default_factory=dict)
    task_seconds: Histogram = field(default_factory=lambda: Histogram("task_seconds"))
    redist_wait_seconds: Histogram = field(
        default_factory=lambda: Histogram("redist_wait_seconds")
    )
    #: per-task retry counts / fault overhead (fault-injected runs only;
    #: empty for clean runs so their exports stay unchanged)
    task_retries: Histogram = field(default_factory=lambda: Histogram("task_retries"))
    fault_overhead_seconds: Histogram = field(
        default_factory=lambda: Histogram("fault_overhead_seconds")
    )
    #: speculative-backup outcomes (runs with speculation only; zero for
    #: other runs so their exports stay unchanged)
    speculation_wins: int = 0
    speculation_losses: int = 0
    speculation_saved_seconds: float = 0.0
    #: cost-evaluator counters (runs through a
    #: :class:`~repro.core.costmodel.CachedCostEvaluator` only; zero
    #: otherwise so cache-less exports stay unchanged).  ``cache_batched``
    #: counts Tsymb cells answered by vectorized batch tables -- the
    #: decide/cost split's replacement for scalar g-search probes.
    cache_hits: int = 0
    cache_misses: int = 0
    cache_batched: int = 0

    # ------------------------------------------------------------------
    @property
    def busy_fraction(self) -> float:
        """Busy core-time over the ``P x makespan`` area."""
        area = self.makespan * self.total_cores
        return sum(c.busy for c in self.cores) / area if area > 0 else 0.0

    @property
    def idle_fraction(self) -> float:
        if self.makespan <= 0:
            return 0.0
        return max(0.0, 1.0 - self.busy_fraction)

    @property
    def redist_wait_fraction(self) -> float:
        """Re-distribution wait over the ``P x makespan`` area."""
        area = self.makespan * self.total_cores
        return sum(c.redist_wait for c in self.cores) / area if area > 0 else 0.0

    @property
    def critical_path_share(self) -> float:
        """Critical path (longest dependency chain of simulated task
        durations) as a fraction of the makespan; 1.0 means the run is
        completely serialised on its critical path."""
        return self.critical_path / self.makespan if self.makespan > 0 else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Scalar cost-cache hit rate (0.0 when no cache was active)."""
        n = self.cache_hits + self.cache_misses
        return self.cache_hits / n if n else 0.0

    @property
    def mean_layer_imbalance(self) -> float:
        if not self.layers:
            return 1.0
        return sum(l.imbalance for l in self.layers) / len(self.layers)

    @property
    def max_layer_imbalance(self) -> float:
        if not self.layers:
            return 1.0
        return max(l.imbalance for l in self.layers)

    # ------------------------------------------------------------------
    def metrics(self) -> Dict[str, float]:
        """Flat, diff-friendly summary (all deterministic quantities).

        Fault metrics appear only when faults actually occurred, so a
        clean run's metric dict is identical to the pre-fault baseline.
        """
        out = {
            "makespan": self.makespan,
            "busy_fraction": self.busy_fraction,
            "idle_fraction": self.idle_fraction,
            "redist_wait_fraction": self.redist_wait_fraction,
            "critical_path_share": self.critical_path_share,
            "mean_layer_imbalance": self.mean_layer_imbalance,
            "max_layer_imbalance": self.max_layer_imbalance,
            "task_seconds_p50": self.task_seconds.p50,
            "task_seconds_p90": self.task_seconds.p90,
            "task_seconds_p99": self.task_seconds.p99,
        }
        if self.task_retries.count:
            out["task_retries_total"] = self.task_retries.total
        if self.fault_overhead_seconds.count:
            out["fault_overhead_seconds"] = self.fault_overhead_seconds.total
        if self.speculation_wins or self.speculation_losses:
            out["speculation_wins"] = float(self.speculation_wins)
            out["speculation_losses"] = float(self.speculation_losses)
            out["speculation_saved_seconds"] = self.speculation_saved_seconds
        if self.cache_hits or self.cache_misses or self.cache_batched:
            out["cache_hits"] = float(self.cache_hits)
            out["cache_misses"] = float(self.cache_misses)
            out["cache_hit_rate"] = self.cache_hit_rate
            out["cache_batched"] = float(self.cache_batched)
        return out

    def to_dict(self) -> Dict[str, Any]:
        """Export the full analysis as a JSON-serialisable dict."""
        return {
            "makespan": self.makespan,
            "total_cores": self.total_cores,
            "busy_fraction": self.busy_fraction,
            "idle_fraction": self.idle_fraction,
            "redist_wait_fraction": self.redist_wait_fraction,
            "critical_path": self.critical_path,
            "critical_path_share": self.critical_path_share,
            "mean_layer_imbalance": self.mean_layer_imbalance,
            "max_layer_imbalance": self.max_layer_imbalance,
            "group_size_distribution": {
                str(k): v for k, v in sorted(self.group_size_distribution.items())
            },
            "cores": [c.to_dict() for c in self.cores],
            "layers": [l.to_dict() for l in self.layers],
            "task_seconds": self.task_seconds.to_dict(),
            "redist_wait_seconds": self.redist_wait_seconds.to_dict(),
            **(
                {
                    "task_retries": self.task_retries.to_dict(),
                    "fault_overhead_seconds": self.fault_overhead_seconds.to_dict(),
                }
                if self.task_retries.count
                else {}
            ),
            **(
                {
                    "speculation": {
                        "wins": self.speculation_wins,
                        "losses": self.speculation_losses,
                        "saved_seconds": self.speculation_saved_seconds,
                    }
                }
                if self.speculation_wins or self.speculation_losses
                else {}
            ),
            **(
                {
                    "cache": {
                        "hits": self.cache_hits,
                        "misses": self.cache_misses,
                        "hit_rate": self.cache_hit_rate,
                        "batched": self.cache_batched,
                    }
                }
                if self.cache_hits or self.cache_misses or self.cache_batched
                else {}
            ),
        }

    def report(self, per_core: bool = False) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"schedule analysis: {len(self.task_seconds.values)} tasks on "
            f"{self.total_cores} cores",
            f"  makespan            {self.makespan:.6g} s",
            f"  busy fraction       {self.busy_fraction * 100:6.2f} %",
            f"  idle fraction       {self.idle_fraction * 100:6.2f} %",
            f"  redist-wait frac.   {self.redist_wait_fraction * 100:6.2f} %",
            f"  critical-path share {self.critical_path_share * 100:6.2f} %",
        ]
        if self.layers:
            lines.append(
                f"  layer imbalance     mean {self.mean_layer_imbalance:.3f}, "
                f"max {self.max_layer_imbalance:.3f} (max/mean group load)"
            )
        if self.group_size_distribution:
            dist = ", ".join(
                f"{size}c x{count}"
                for size, count in sorted(self.group_size_distribution.items())
            )
            lines.append(f"  group sizes         {dist}")
        h = self.task_seconds
        if h.count:
            lines.append(
                f"  task seconds        p50 {h.p50:.4g}  p90 {h.p90:.4g}  "
                f"p99 {h.p99:.4g}  max {h.max:.4g}"
            )
        if self.task_retries.count:
            lines.append(
                f"  fault injection     {int(self.task_retries.total)} retries over "
                f"{self.task_retries.count} tasks, "
                f"{self.fault_overhead_seconds.total:.4g} s overhead"
            )
        if self.speculation_wins or self.speculation_losses:
            lines.append(
                f"  speculation         {self.speculation_wins} wins / "
                f"{self.speculation_losses} losses, "
                f"{self.speculation_saved_seconds:.4g} s saved"
            )
        if self.cache_hits or self.cache_misses or self.cache_batched:
            lines.append(
                f"  cost cache          {self.cache_hits} hits / "
                f"{self.cache_misses} misses "
                f"({self.cache_hit_rate * 100:.1f} %), "
                f"{self.cache_batched} batched cells"
            )
        if per_core:
            lines.append("  per-core usage:")
            for c in self.cores:
                lines.append(
                    f"    core {c.label:>8s}  busy {c.busy_fraction * 100:6.2f} %  "
                    f"redist-wait {c.redist_wait:.4g} s  tasks {c.tasks}"
                )
        return "\n".join(lines)


def _critical_path(graph, trace) -> float:
    """Longest dependency chain of simulated durations through ``graph``."""
    longest: Dict[Any, float] = {}
    for task in graph.topological_order():
        if task not in trace:
            continue
        entry = trace[task]
        best_pred = 0.0
        for p in graph.predecessors(task):
            if p in longest:
                best_pred = max(best_pred, longest[p])
        longest[task] = best_pred + entry.duration
    return max(longest.values(), default=0.0)


def _layer_balances(layered, trace) -> List[LayerBalance]:
    out: List[LayerBalance] = []
    for li, layer in enumerate(layered.layers):
        group_busy: List[float] = []
        n_tasks = 0
        for group in layer.groups:
            busy = 0.0
            for node in group:
                for member in layered.expand(node):
                    n_tasks += 1
                    if member in trace:
                        e = trace[member]
                        busy += e.duration * len(e.cores)
            group_busy.append(busy)
        out.append(
            LayerBalance(
                index=li,
                tasks=n_tasks,
                groups=layer.num_groups,
                group_busy=group_busy,
            )
        )
    return out


def analyze(result) -> ScheduleAnalysis:
    """Compute a :class:`ScheduleAnalysis` from a pipeline run.

    ``result`` is a :class:`~repro.pipeline.PipelineResult` (or anything
    with ``.trace``, ``.graph`` and ``.scheduling`` attributes) whose
    pipeline ran with ``simulate=True``.
    """
    trace = getattr(result, "trace", None)
    if trace is None:
        raise ValueError(
            "cannot analyze a run without an execution trace "
            "(the pipeline ran with simulate=False)"
        )
    graph = getattr(result, "graph", None)
    scheduling = getattr(result, "scheduling", None)
    layered = getattr(scheduling, "layered", None) if scheduling is not None else None

    span = trace.makespan
    busy = trace.per_core_busy()
    waits: Dict[Any, float] = {}
    ntasks: Dict[Any, int] = {}
    for e in trace.entries:
        for c in e.cores:
            waits[c] = waits.get(c, 0.0) + e.redist_wait
            ntasks[c] = ntasks.get(c, 0) + 1
    cores = [
        CoreUsage(
            label=c.label,
            busy=busy.get(c, 0.0),
            idle=span - busy.get(c, 0.0),
            redist_wait=waits.get(c, 0.0),
            tasks=ntasks.get(c, 0),
        )
        for c in trace.machine.cores()
    ]

    analysis = ScheduleAnalysis(
        makespan=span,
        total_cores=trace.machine.total_cores,
        cores=cores,
    )
    for e in trace.entries:
        analysis.task_seconds.observe(e.duration)
        if e.redist_wait > 0:
            analysis.redist_wait_seconds.observe(e.redist_wait)
        if getattr(e, "retries", 0) > 0:
            analysis.task_retries.observe(e.retries)
            analysis.fault_overhead_seconds.observe(
                getattr(e, "fault_overhead", 0.0)
            )
        spec = getattr(e, "speculation", "")
        if spec == "win":
            analysis.speculation_wins += 1
            analysis.speculation_saved_seconds += e.speculation_saved
        elif spec == "loss":
            analysis.speculation_losses += 1
    if graph is not None:
        analysis.critical_path = _critical_path(graph, trace)
    if layered is not None:
        analysis.layers = _layer_balances(layered, trace)
        for layer in layered.layers:
            for size in layer.group_sizes:
                analysis.group_size_distribution[size] = (
                    analysis.group_size_distribution.get(size, 0) + 1
                )
    cache = getattr(result, "cache", None)
    if cache is not None:
        analysis.cache_hits = cache.total_hits
        analysis.cache_misses = cache.total_misses
        analysis.cache_batched = cache.total_batched
    return analysis
