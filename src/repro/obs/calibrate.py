"""Predicted-vs-actual calibration of the symbolic cost model.

Every scheduling decision is driven by ``Tsymb(M, q)``; this module
measures how well those predictions match what actually happened, task
by task, at the width each task was scheduled on.  Two "actual" sources
are supported:

* **sim mode** (:func:`calibrate_result`) -- the simulated
  :class:`~repro.sim.trace.TraceEntry` durations, minus injected fault
  overhead.  The simulator prices time with the same platform model, so
  residuals here isolate *scheduling-time* mispricing (contention,
  redistribution waits, speculative re-execution) from platform error.
* **wall mode** (:func:`calibrate_spans`) -- wall-clock ``task`` spans
  recorded by :class:`~repro.runtime.backends.SerialBackend` /
  :class:`~repro.runtime.backends.ProcessPoolBackend`.  Wall seconds and
  model seconds live on different scales, so a least-squares scale
  factor is fitted first and residuals are measured against the scaled
  predictions -- the report grades the *shape* of the model, not the
  unit.

Both produce a :class:`CalibrationReport`: signed bias, MAPE, residual
quantiles, worst offenders, and groupings by layer / group width /
collective mix.  ``python -m repro.obs calib --gate`` turns the report
into a CI gate that fails when bias or MAPE drift past thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from .metrics import Histogram

__all__ = [
    "TaskCalibration",
    "CalibrationReport",
    "calibrate_result",
    "calibrate_spans",
]


@dataclass
class TaskCalibration:
    """One task's predicted-vs-actual join at its scheduled width."""

    task: str
    width: int
    predicted: float
    actual: float
    #: layer index in the layered schedule (``None`` for dynamic runs)
    layer: Optional[int] = None
    #: group index within the layer (``None`` for dynamic runs)
    group: Optional[int] = None
    #: sorted comma-joined collective ops of the task (``"none"`` if pure)
    collectives: str = "none"

    def residual(self, scale: float = 1.0) -> float:
        """Signed relative error ``(actual - scale*pred) / (scale*pred)``.

        Positive means the model was *optimistic* (task ran slower than
        priced); ``0.0`` when the scaled prediction is zero.
        """
        ref = self.predicted * scale
        if ref <= 0.0:
            return 0.0
        return (self.actual - ref) / ref

    def to_dict(self, scale: float = 1.0) -> Dict[str, Any]:
        """Export the join plus its residual at ``scale``."""
        return {
            "task": self.task,
            "width": self.width,
            "predicted": self.predicted,
            "actual": self.actual,
            "residual": self.residual(scale),
            **({"layer": self.layer} if self.layer is not None else {}),
            **({"group": self.group} if self.group is not None else {}),
            "collectives": self.collectives,
        }


def _group_stats(
    rows: List[TaskCalibration], scale: float
) -> Dict[str, float]:
    """Bias / MAPE / count summary of one row group."""
    residuals = [r.residual(scale) for r in rows]
    n = len(residuals)
    return {
        "tasks": n,
        "bias": sum(residuals) / n if n else 0.0,
        "mape": sum(abs(e) for e in residuals) / n if n else 0.0,
    }


@dataclass
class CalibrationReport:
    """Accuracy report of the cost model over one run.

    ``bias`` is the mean *signed* relative error (positive: the model
    was optimistic, tasks ran slower than priced); ``mape`` the mean
    absolute relative error.  Wall-clock reports carry the fitted
    ``scale`` (model seconds -> wall seconds); simulator reports use
    ``scale == 1.0``.
    """

    mode: str  # "sim" or "wall"
    rows: List[TaskCalibration] = field(default_factory=list)
    scale: float = 1.0

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of joined (predicted, actual) pairs."""
        return len(self.rows)

    @property
    def residuals(self) -> List[float]:
        """Signed relative errors of every row, at the fitted scale."""
        return [r.residual(self.scale) for r in self.rows]

    @property
    def bias(self) -> float:
        """Mean signed relative error (0.0 with no rows)."""
        res = self.residuals
        return sum(res) / len(res) if res else 0.0

    @property
    def mape(self) -> float:
        """Mean absolute percentage error (0.0 with no rows)."""
        res = self.residuals
        return sum(abs(e) for e in res) / len(res) if res else 0.0

    def residual_quantiles(self) -> Dict[str, float]:
        """p50/p90/p99 of the *absolute* relative errors."""
        h = Histogram("abs_residual", (abs(e) for e in self.residuals))
        return {"p50": h.p50, "p90": h.p90, "p99": h.p99}

    def worst(self, top: int = 5) -> List[TaskCalibration]:
        """The ``top`` rows with the largest absolute residual."""
        return sorted(
            self.rows,
            key=lambda r: (-abs(r.residual(self.scale)), r.task),
        )[:top]

    # ------------------------------------------------------------------
    def _grouped(self, key) -> Dict[str, Dict[str, float]]:
        groups: Dict[str, List[TaskCalibration]] = {}
        for row in self.rows:
            groups.setdefault(str(key(row)), []).append(row)
        return {
            label: _group_stats(rows, self.scale)
            for label, rows in sorted(groups.items())
        }

    def by_width(self) -> Dict[str, Dict[str, float]]:
        """Bias/MAPE grouped by scheduled group width."""
        return self._grouped(lambda r: r.width)

    def by_layer(self) -> Dict[str, Dict[str, float]]:
        """Bias/MAPE grouped by schedule layer (static schedules only)."""
        return self._grouped(
            lambda r: r.layer if r.layer is not None else "dynamic"
        )

    def by_collectives(self) -> Dict[str, Dict[str, float]]:
        """Bias/MAPE grouped by the task's collective mix."""
        return self._grouped(lambda r: r.collectives)

    # ------------------------------------------------------------------
    def gate(self, max_bias: float = 0.25, max_mape: float = 0.35) -> List[str]:
        """Threshold check; returns a list of violations (empty = pass).

        ``max_bias`` bounds the *absolute* mean signed error, ``max_mape``
        the mean absolute error.  A report with no joined rows fails --
        an empty join means the calibration itself is broken, and a gate
        that silently passes on no data is worse than no gate.
        """
        problems: List[str] = []
        if not self.rows:
            problems.append("no (predicted, actual) pairs joined")
            return problems
        if abs(self.bias) > max_bias:
            problems.append(
                f"bias {self.bias:+.3f} exceeds +/-{max_bias:g}"
            )
        if self.mape > max_mape:
            problems.append(f"MAPE {self.mape:.3f} exceeds {max_mape:g}")
        return problems

    # ------------------------------------------------------------------
    def to_dict(self, top: int = 5) -> Dict[str, Any]:
        """JSON-serialisable export (summary plus worst offenders)."""
        return {
            "mode": self.mode,
            "scale": self.scale,
            "tasks": self.count,
            "bias": self.bias,
            "mape": self.mape,
            "residual_quantiles": self.residual_quantiles(),
            "by_width": self.by_width(),
            "by_layer": self.by_layer(),
            "by_collectives": self.by_collectives(),
            "worst": [r.to_dict(self.scale) for r in self.worst(top)],
        }

    def report(self, top: int = 5) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"cost-model calibration ({self.mode} mode): "
            f"{self.count} tasks joined",
        ]
        if self.mode == "wall":
            lines.append(f"  fitted scale        {self.scale:.6g} s/model-s")
        q = self.residual_quantiles()
        lines += [
            f"  signed bias         {self.bias:+7.2%}",
            f"  MAPE                {self.mape:7.2%}",
            f"  |residual| p50      {q['p50']:7.2%}",
            f"  |residual| p90      {q['p90']:7.2%}",
            f"  |residual| p99      {q['p99']:7.2%}",
        ]
        for label, groups in (
            ("width", self.by_width()),
            ("layer", self.by_layer()),
            ("collectives", self.by_collectives()),
        ):
            if len(groups) > 1:
                parts = ", ".join(
                    f"{k}: {v['bias']:+.1%}" for k, v in groups.items()
                )
                lines.append(f"  bias by {label:<11s} {parts}")
        offenders = self.worst(top)
        if offenders:
            lines.append(f"  worst offenders (top {len(offenders)}):")
            for r in offenders:
                lines.append(
                    f"    {r.task:<24s} w={r.width:<4d} "
                    f"pred {r.predicted * self.scale:.4g}  "
                    f"actual {r.actual:.4g}  "
                    f"residual {r.residual(self.scale):+7.2%}"
                )
        return "\n".join(lines)


# ----------------------------------------------------------------------
# joins
# ----------------------------------------------------------------------
def _collective_mix(task) -> str:
    """Sorted comma-joined collective ops of ``task`` (``"none"`` if pure)."""
    ops = sorted({c.op for c in getattr(task, "comm", ())})
    return ",".join(ops) if ops else "none"


def _membership(scheduling) -> Dict[Any, Tuple[int, int]]:
    """Map task -> (layer index, group index) from a layered schedule."""
    out: Dict[Any, Tuple[int, int]] = {}
    layered = getattr(scheduling, "layered", None)
    if layered is None:
        return out
    for li, layer in enumerate(layered.layers):
        for gi, group in enumerate(layer.groups):
            for node in group:
                for member in layered.expand(node):
                    out[member] = (li, gi)
    return out


def calibrate_result(result, cost=None) -> CalibrationReport:
    """Simulator-mode calibration of a pipeline run.

    Joins ``Tsymb(task, width)`` -- evaluated through ``cost`` or the
    evaluator the pipeline ran with (``result.cost``) -- against the
    fault-free simulated durations of ``result.trace``.  Requires a
    simulated run and a cost evaluator.
    """
    trace = getattr(result, "trace", None)
    if trace is None:
        raise ValueError(
            "cannot calibrate a run without an execution trace "
            "(the pipeline ran with simulate=False)"
        )
    cost = cost if cost is not None else getattr(result, "cost", None)
    if cost is None:
        raise ValueError(
            "no cost evaluator available: pass cost=... or run the "
            "pipeline through SchedulingPipeline (which records it)"
        )
    member = _membership(getattr(result, "scheduling", None))
    rows = []
    for task, width, actual in trace.actuals():
        layer_group = member.get(task, (None, None))
        rows.append(
            TaskCalibration(
                task=task.name,
                width=width,
                predicted=float(cost.tsymb(task, width)),
                actual=actual,
                layer=layer_group[0],
                group=layer_group[1],
                collectives=_collective_mix(task),
            )
        )
    return CalibrationReport(mode="sim", rows=rows, scale=1.0)


def calibrate_spans(graph, cost, obs, scale: Optional[float] = None) -> CalibrationReport:
    """Wall-clock-mode calibration from backend task spans.

    Joins ``Tsymb`` against the ``task`` spans that
    :class:`~repro.runtime.backends.SerialBackend` and
    :class:`~repro.runtime.backends.ProcessPoolBackend` record in
    ``obs`` (an :class:`~repro.obs.Instrumentation`), matching by task
    name and scheduled width ``q``; failed attempts (spans with an
    ``error`` tag) are excluded.  Unless ``scale`` is given, the model
    seconds -> wall seconds factor is fitted by least squares
    (``sum(pred*actual) / sum(pred^2)``) so the report measures model
    *shape*, not units.
    """
    by_name = {t.name: t for t in graph.topological_order()}
    rows: List[TaskCalibration] = []
    for span in obs.spans:
        if span.name != "task" or "task" not in span.meta:
            continue
        if "error" in span.meta:
            continue
        task = by_name.get(str(span.meta["task"]))
        if task is None:
            continue
        width = int(span.meta.get("q", 1))
        rows.append(
            TaskCalibration(
                task=task.name,
                width=width,
                predicted=float(cost.tsymb(task, width)),
                actual=float(span.duration),
                collectives=_collective_mix(task),
            )
        )
    rows.sort(key=lambda r: r.task)
    if scale is None:
        num = sum(r.predicted * r.actual for r in rows)
        den = sum(r.predicted * r.predicted for r in rows)
        scale = num / den if den > 0 else 1.0
    return CalibrationReport(mode="wall", rows=rows, scale=scale)
