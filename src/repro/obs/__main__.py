"""Entry point: ``python -m repro.obs <export|report|gantt|diff> ...``."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
