"""The ``python -m repro.obs`` command line.

Eight subcommands make pipeline runs inspectable and gate regressions:

* ``export`` -- run one instrumented pipeline and write Perfetto
  trace-event JSON (``--out``) plus a flat run-metrics JSON
  (``--run-json``) the ``diff`` subcommand understands;
* ``report`` -- print the derived :class:`ScheduleAnalysis` (per-core
  utilization, layer imbalance, critical-path share) of a run;
* ``gantt`` -- render the ASCII Gantt chart of a run in the terminal;
* ``diff`` -- compare two run-metrics JSONs (or two
  ``BENCH_pipeline.json`` benchmark files) and exit non-zero when any
  watched metric regressed past ``--threshold``; CI uses this as the
  benchmark regression gate;
* ``calib`` -- predicted-vs-actual cost-model calibration
  (:mod:`repro.obs.calibrate`): per-task ``Tsymb`` residuals against
  the simulated trace and, with ``--checkpoint-dir``, against the
  wall-clock spans of a functional backend run; ``--gate`` turns the
  report into a non-zero exit when bias/MAPE exceed thresholds;
* ``prom`` -- run a pipeline and render its labeled metrics registry in
  Prometheus text-exposition format;
* ``history`` / ``trend`` -- list the persistent run registry
  (``--registry-dir``) and detect metric drift across the last N
  records of a matching digest key.

Run specifications are shared by
``export``/``report``/``gantt``/``calib``/``prom``: an ODE solver
(``--solver irk``), a platform (``--platform chic --cores 64``), a
problem size (``--n 200``), plus optional fault injection
(``--faults``), speculative straggler mitigation (``--speculate``), a
journaled functional run (``--checkpoint-dir`` / ``--resume``), the
execution backend of that functional run (``--backend serial``,
``--backend pool[:W]`` or ``--backend cluster[:W]``) and a persistent
run registry
(``--registry-dir``) every run appends its :class:`RunRecord` to.
"""

from __future__ import annotations

import argparse
import json
import math
import sys
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["main", "build_parser", "flatten_metrics", "compare_metrics"]

#: MethodConfig keywords of the five paper solvers (matches the
#: benchmark harness)
SOLVER_CFGS: Dict[str, Dict[str, int]] = {
    "irk": dict(K=4, m=7),
    "diirk": dict(K=4, m=3, I=2),
    "epol": dict(K=8),
    "pab": dict(K=8),
    "pabm": dict(K=8, m=2),
}

#: metric name suffixes where an *increase* past the threshold regresses
LOWER_IS_BETTER = (
    "makespan",
    "predicted_makespan",
    "simulated_makespan",
    "cache_requests",
    "cache_misses",
    "gsearch_probes",
    "redist_wait_fraction",
    "idle_fraction",
    "mean_layer_imbalance",
    "max_layer_imbalance",
    "critical_path_share",
    "task_seconds_p50",
    "task_seconds_p90",
    "task_seconds_p99",
    "task_retries_total",
    "degraded_makespan",
    "speculation_losses",
)
#: metric name suffixes where a *decrease* past the threshold regresses
HIGHER_IS_BETTER = (
    "cache_hit_rate",
    "evaluation_reduction",
    "busy_fraction",
    "utilization",
    "speculation_wins",
    # pool-vs-serial wall-clock speedup from benchmarks/bench_runtime.py
    "speedup",
    # listed here (checked before the generic ``_seconds`` -> lower
    # fallback) so --include-wall diffs orient it correctly
    "speculation_saved_seconds",
)
#: wall-clock metrics, too noisy for a gate unless explicitly included
WALL_CLOCK_SUFFIXES = ("_seconds",)


# ----------------------------------------------------------------------
# shared run-spec plumbing
# ----------------------------------------------------------------------
def _add_run_arguments(ap: argparse.ArgumentParser) -> None:
    ap.add_argument(
        "--solver",
        choices=sorted(SOLVER_CFGS),
        default="irk",
        help="ODE solver whose time step is scheduled (default: irk)",
    )
    ap.add_argument(
        "--platform",
        default="chic",
        help="target platform name (chic, juropa, sgi_altix; default: chic)",
    )
    ap.add_argument("--cores", type=int, default=64, help="core count (default: 64)")
    ap.add_argument(
        "--n", type=int, default=250, help="BRUSS2D system parameter N (default: 250)"
    )
    ap.add_argument(
        "--version",
        choices=("tp", "dp"),
        default="tp",
        help="program version: task parallel or data parallel (default: tp)",
    )
    ap.add_argument(
        "--mapping",
        choices=("consecutive", "scattered"),
        default="consecutive",
        help="mapping strategy of the group placement (default: consecutive)",
    )
    ap.add_argument(
        "--quick", action="store_true", help="small problem (N=120) for smoke runs"
    )
    ap.add_argument(
        "--faults",
        metavar="SEED:RATE[:LAYER:NODES]",
        help="deterministic fault injection: seed and task failure rate, "
        "optionally losing NODES nodes before layer LAYER "
        "(e.g. --faults 7:0.2 or --faults 7:0.2:1:2)",
    )
    ap.add_argument(
        "--speculate",
        metavar="FACTOR[:QUANTILE]",
        help="speculative straggler mitigation: launch a backup attempt "
        "once a task runs FACTOR times past its estimate (or past the "
        "QUANTILE of completed attempts), first finisher wins "
        "(e.g. --speculate 1.5 or --speculate 1.3:0.9)",
    )
    ap.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="additionally run one *functional* solver step under a "
        "write-ahead journal + checkpoint store rooted at DIR",
    )
    ap.add_argument(
        "--resume",
        action="store_true",
        help="with --checkpoint-dir: resume from the journal, skipping "
        "already-completed tasks",
    )
    ap.add_argument(
        "--backend",
        metavar="serial|pool[:W]|cluster[:W]",
        default="serial",
        help="execution backend of the functional --checkpoint-dir run: "
        "'serial' (default, in-process), 'pool' for a forked "
        "process pool or 'cluster' for socket workers with heartbeat "
        "failure detection, optionally with a worker count (e.g. pool:4, "
        "cluster:4)",
    )
    ap.add_argument(
        "--registry-dir",
        metavar="DIR",
        help="append one digest-keyed RunRecord of this run to the "
        "persistent run registry (runs.jsonl) under DIR "
        "(queried by the history/trend subcommands)",
    )


def _run_spec(args, obs=None) -> Tuple[Dict[str, Any], Any, Any]:
    """Run the pipeline described by the CLI flags.

    Returns ``(spec, result, cost)`` -- the run description, the
    :class:`~repro.pipeline.PipelineResult` and the cost model bound to
    the target platform (for symbolic re-rendering).  ``obs`` threads a
    caller-supplied :class:`~repro.obs.Instrumentation` through both the
    pipeline and the optional functional ``--checkpoint-dir`` run (the
    ``prom``/``calib`` subcommands attach a metrics registry this way).
    With ``--registry-dir``, one :class:`~repro.obs.RunRecord` of the
    pipeline run is appended to the persistent registry.
    """
    from ..cluster.platforms import by_name
    from ..core.costmodel import CostModel
    from ..experiments.common import ode_pipeline
    from ..mapping.strategies import consecutive, scattered
    from ..ode import MethodConfig, bruss2d
    from ..sim.executor import SimulationOptions

    n = 120 if args.quick else args.n
    platform = by_name(args.platform).with_cores(args.cores)
    cost = CostModel(platform)
    cfg = MethodConfig(args.solver, **SOLVER_CFGS[args.solver])
    strategy = consecutive() if args.mapping == "consecutive" else scattered()
    faults = None
    if getattr(args, "faults", None):
        from ..faults import parse_faults_spec

        faults = parse_faults_spec(args.faults)
    speculation = None
    if getattr(args, "speculate", None):
        from ..recovery import parse_speculation_spec

        speculation = parse_speculation_spec(args.speculate)
    options = SimulationOptions(faults=faults, speculation=speculation)
    result = ode_pipeline(
        bruss2d(n),
        cfg,
        platform,
        strategy,
        version=args.version,
        cost=cost,
        options=options,
        obs=obs,
    )
    spec = {
        "solver": args.solver,
        "platform": args.platform,
        "cores": args.cores,
        "n": n,
        "version": args.version,
        "mapping": args.mapping,
    }
    if getattr(args, "faults", None):
        spec["faults"] = args.faults
    if getattr(args, "speculate", None):
        spec["speculation"] = args.speculate
    if getattr(args, "checkpoint_dir", None):
        from ..experiments.recovery_run import run_checkpointed_step
        from ..runtime.backends import parse_backend_spec

        backend_spec = getattr(args, "backend", None) or "serial"
        _, recovery = run_checkpointed_step(
            bruss2d(n),
            cfg,
            args.checkpoint_dir,
            resume=args.resume,
            speculation=speculation,
            backend=parse_backend_spec(backend_spec),
            obs=obs,
        )
        spec["checkpoint_dir"] = args.checkpoint_dir
        spec["resume"] = bool(args.resume)
        spec["recovery"] = recovery
        if backend_spec != "serial":
            spec["backend"] = backend_spec
    if getattr(args, "registry_dir", None):
        import time

        from .registry import RunRegistry, record_from_result

        registry = RunRegistry(args.registry_dir)
        path = registry.append(
            record_from_result(result, spec=spec, timestamp=time.time())
        )
        print(f"appended run record to {path}")
    return spec, result, cost


def _print_recovery(spec: Dict[str, Any]) -> None:
    rec = spec.get("recovery")
    if not rec:
        return
    line = (
        f"recovery: {rec['tasks_executed']} tasks executed, "
        f"{rec['resumed_tasks']} resumed from journal, "
        f"{rec['checkpoint_bytes']} checkpoint bytes"
    )
    if rec.get("speculation_wins") or rec.get("speculation_losses"):
        line += (
            f", speculation {rec['speculation_wins']} win(s) / "
            f"{rec['speculation_losses']} loss(es)"
        )
    if rec.get("cancelled"):
        line += f", cancelled: {rec['cancelled']}"
    print(line)


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------
def _cmd_export(args) -> int:
    from .perfetto import pipeline_trace, write_trace
    from .registry import program_digest

    spec, result, _ = _run_spec(args)
    _print_recovery(spec)
    run_meta = {
        "solver": spec["solver"],
        "platform": spec["platform"],
        "cores": spec["cores"],
        "backend": spec.get("backend", "sim"),
        "program_digest": program_digest(result.graph),
    }
    doc = pipeline_trace(result, run_meta=run_meta)
    path = write_trace(args.out, doc)
    print(f"wrote {len(doc['traceEvents'])} trace events to {path}")
    if args.run_json:
        payload = {
            "schema": "repro.obs.run/1",
            "spec": spec,
            "metrics": result.metrics(),
            "analysis": result.analysis().to_dict(),
            "calibration": result.calibration().to_dict(),
        }
        run_path = Path(args.run_json)
        run_path.parent.mkdir(parents=True, exist_ok=True)
        run_path.write_text(json.dumps(payload, indent=2, default=str) + "\n")
        print(f"wrote run metrics to {run_path}")
    return 0


def _cmd_report(args) -> int:
    if args.run:
        payload = json.loads(Path(args.run).read_text())
        analysis = payload.get("analysis", {})
        print(f"run metrics from {args.run}:")
        for key, value in sorted(payload.get("metrics", {}).items()):
            print(f"  {key:<28s} {value:.6g}")
        if analysis:
            print(
                f"  cores: {analysis.get('total_cores')}  "
                f"busy {analysis.get('busy_fraction', 0.0) * 100:.2f} %  "
                f"critical-path share "
                f"{analysis.get('critical_path_share', 0.0) * 100:.2f} %"
            )
        calib = payload.get("calibration")
        if calib:
            print(
                f"  calibration ({calib.get('mode', 'sim')}): "
                f"{calib.get('tasks', 0)} tasks, "
                f"bias {calib.get('bias', 0.0):+.2%}, "
                f"MAPE {calib.get('mape', 0.0):.2%}"
            )
        return 0
    spec, result, _ = _run_spec(args)
    _print_recovery(spec)
    print(result.report())
    print()
    print(result.analysis().report(per_core=args.per_core))
    return 0


def _cmd_gantt(args) -> int:
    from .gantt import render_layers, render_trace

    spec, result, cost = _run_spec(args)
    _print_recovery(spec)
    print(render_trace(result.trace, width=args.width, by=args.by))
    if args.layers and result.scheduling.layered is not None:
        print()
        print(render_layers(result.scheduling.layered, cost))
    return 0


# ----------------------------------------------------------------------
# diff / regression gate
# ----------------------------------------------------------------------
def flatten_metrics(payload: Dict[str, Any], include_wall: bool = False) -> Dict[str, float]:
    """Flat ``name -> value`` view of a run/benchmark JSON payload.

    Understands three shapes: ``repro.obs.run`` exports (``metrics``
    dict), ``BENCH_*.json`` benchmark files (``results`` row list keyed
    by ``solver``) and plain flat dicts of numbers.
    """
    def numeric(d: Dict[str, Any], prefix: str = "") -> Dict[str, float]:
        out: Dict[str, float] = {}
        for key, value in d.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            if not include_wall and key.endswith(WALL_CLOCK_SUFFIXES):
                continue
            if not math.isfinite(value):
                continue
            out[prefix + key] = float(value)
        return out

    if isinstance(payload.get("results"), list):
        out: Dict[str, float] = {}
        for i, row in enumerate(payload["results"]):
            tag = row.get("solver") or row.get("name") or str(i)
            out.update(numeric(row, prefix=f"{tag}."))
        return out
    if isinstance(payload.get("metrics"), dict):
        return numeric(payload["metrics"])
    return numeric(payload)


def _direction(name: str) -> Optional[str]:
    leaf = name.rsplit(".", 1)[-1]
    if leaf in HIGHER_IS_BETTER:
        return "higher"
    if leaf in LOWER_IS_BETTER or leaf.endswith("_seconds"):
        return "lower"
    return None


def compare_metrics(
    old: Dict[str, float], new: Dict[str, float], threshold: float
) -> List[Dict[str, Any]]:
    """Per-metric comparison rows; ``regressed`` marks threshold breaks.

    The ratio is oriented so that values above 1.0 are worse than the
    baseline regardless of the metric's direction.
    """
    rows: List[Dict[str, Any]] = []
    for name in sorted(set(old) & set(new)):
        direction = _direction(name)
        if direction is None:
            continue
        a, b = old[name], new[name]
        worse, better = (b, a) if direction == "lower" else (a, b)
        if better == 0.0:
            ratio = 1.0 if worse == 0.0 else float("inf")
        else:
            ratio = worse / better
        rows.append(
            {
                "metric": name,
                "old": a,
                "new": b,
                "ratio": ratio,
                "regressed": ratio > threshold,
            }
        )
    return rows


def _cmd_diff(args) -> int:
    old = json.loads(Path(args.old).read_text())
    new = json.loads(Path(args.new).read_text())
    rows = compare_metrics(
        flatten_metrics(old, include_wall=args.include_wall),
        flatten_metrics(new, include_wall=args.include_wall),
        args.threshold,
    )
    if not rows:
        print("no comparable metrics found", file=sys.stderr)
        return 2
    regressions = [r for r in rows if r["regressed"]]
    width = max(len(r["metric"]) for r in rows)
    print(f"{'metric':<{width}s} | {'old':>12s} | {'new':>12s} | ratio")
    print("-" * (width + 42))
    # worst relative delta first, so the biggest regression tops the table
    for r in sorted(rows, key=lambda r: (-r["ratio"], r["metric"])):
        if not args.verbose and not r["regressed"]:
            continue
        mark = "  REGRESSED" if r["regressed"] else ""
        print(
            f"{r['metric']:<{width}s} | {r['old']:12.6g} | {r['new']:12.6g} | "
            f"{r['ratio']:6.3f}{mark}"
        )
    print(
        f"{len(rows)} metrics compared, {len(regressions)} regression(s) "
        f"past threshold {args.threshold:g}"
    )
    for r in sorted(regressions, key=lambda r: (-r["ratio"], r["metric"])):
        print(
            f"  REGRESSED {r['metric']}: {r['old']:.6g} -> {r['new']:.6g} "
            f"(ratio {r['ratio']:.3f} > {args.threshold:g})"
        )
    return 1 if regressions else 0


# ----------------------------------------------------------------------
# run registry: history / trend
# ----------------------------------------------------------------------
def _format_ts(ts: float) -> str:
    """Local-time ``YYYY-mm-dd HH:MM:SS`` rendering of an epoch stamp."""
    import time

    return time.strftime("%Y-%m-%d %H:%M:%S", time.localtime(ts))


def _cmd_history(args) -> int:
    from .registry import RunRegistry

    registry = RunRegistry(args.registry_dir)
    records = registry.history(key=args.key, last=args.last)
    if not records:
        print(f"no run records under {registry.path}", file=sys.stderr)
        return 2
    for r in records:
        print(
            f"{_format_ts(r.get('timestamp', 0.0))}  "
            f"{r.get('key', '?'):<38s} "
            f"{r.get('solver') or '?':<6s} "
            f"{r.get('backend', '?'):<6s} "
            f"cores={r.get('cores', 0):<5d} "
            f"makespan={r.get('makespan', 0.0):.6g}"
        )
    print(f"{len(records)} run record(s) in {registry.path}")
    return 0


def _cmd_trend(args) -> int:
    from .registry import RunRegistry

    registry = RunRegistry(args.registry_dir)
    summary = registry.trend(
        metric=args.metric,
        key=args.key,
        last=args.last,
        threshold=args.threshold,
    )
    if summary["count"] < 2:
        skipped = summary.get("skipped", 0)
        note = f" ({skipped} record(s) without a finite value)" if skipped else ""
        print(
            f"need at least 2 comparable records for {args.metric!r}, "
            f"found {summary['count']}{note}",
            file=sys.stderr,
        )
        return 2
    scope = f" for key {args.key}" if args.key else ""
    print(f"trend of {args.metric} over {summary['count']} record(s){scope}:")
    print(f"  baseline (median)   {summary['baseline']:.6g}")
    print(f"  latest              {summary['latest']:.6g}")
    print(
        f"  oriented ratio      {summary['ratio']:.3f} "
        f"(>1 is worse; direction: {summary['direction']})"
    )
    if summary["drifted"]:
        print(f"  DRIFTED past threshold {args.threshold:g}")
        return 1
    print(f"  within threshold {args.threshold:g}")
    return 0


# ----------------------------------------------------------------------
# calibration / prometheus
# ----------------------------------------------------------------------
class _ScaledCost:
    """Proxy cost evaluator scaling ``tsymb`` by a constant factor.

    The ``calib --distort`` testing aid: an intentionally mispriced
    model the calibration gate must reject.  Everything except
    ``tsymb`` passes through to the wrapped evaluator.
    """

    def __init__(self, inner, factor: float) -> None:
        self._inner = inner
        self._factor = float(factor)

    def tsymb(self, task, q: int) -> float:
        """The wrapped ``Tsymb`` scaled by the distortion factor."""
        return self._inner.tsymb(task, q) * self._factor

    def __getattr__(self, name: str):
        """Delegate every other attribute to the wrapped evaluator."""
        return getattr(self._inner, name)


def _cmd_calib(args) -> int:
    from .calibrate import calibrate_spans

    # the functional run is driven below with its own instrumentation,
    # so the sim pipeline run stays clean of wall-clock spans
    checkpoint_dir = getattr(args, "checkpoint_dir", None)
    args.checkpoint_dir = None
    spec, result, cost = _run_spec(args)
    eval_cost = result.cost if result.cost is not None else cost
    if args.distort != 1.0:
        eval_cost = _ScaledCost(eval_cost, args.distort)
        print(f"cost model distorted by x{args.distort:g} (testing aid)")
    report = result.calibration(cost=eval_cost)
    print(report.report(top=args.top))
    if checkpoint_dir:
        from ..experiments.recovery_run import run_checkpointed_step
        from ..ode import MethodConfig, bruss2d
        from ..ode.programs import build_ode_program
        from ..runtime.backends import parse_backend_spec
        from .events import Instrumentation

        n = 120 if args.quick else args.n
        cfg = MethodConfig(args.solver, **SOLVER_CFGS[args.solver])
        wall_obs = Instrumentation()
        backend_spec = getattr(args, "backend", None) or "serial"
        run_checkpointed_step(
            bruss2d(n),
            cfg,
            checkpoint_dir,
            resume=args.resume,
            backend=parse_backend_spec(backend_spec),
            obs=wall_obs,
        )
        build = build_ode_program(bruss2d(n), cfg, functional=True)
        body = build.body_of(build.composed_nodes()[0])
        wall = calibrate_spans(body, eval_cost, wall_obs)
        print()
        print(f"wall-clock calibration ({backend_spec} backend):")
        print(wall.report(top=args.top))
    if args.gate:
        problems = report.gate(max_bias=args.max_bias, max_mape=args.max_mape)
        if problems:
            for problem in problems:
                print(f"CALIBRATION GATE FAILED: {problem}", file=sys.stderr)
            return 1
        print(
            f"calibration gate passed (|bias| {abs(report.bias):.3f} <= "
            f"{args.max_bias:g}, MAPE {report.mape:.3f} <= {args.max_mape:g})"
        )
    return 0


def _cmd_prom(args) -> int:
    from .events import Instrumentation
    from .registry import MetricsRegistry, publish_result

    registry = MetricsRegistry()
    obs = Instrumentation(registry=registry)
    spec, result, _ = _run_spec(args, obs=obs)
    publish_result(
        registry,
        result,
        solver=spec["solver"],
        platform=spec["platform"],
        cores=spec["cores"],
        backend=spec.get("backend", "sim"),
    )
    text = registry.render_prometheus()
    if args.out:
        _print_recovery(spec)
        out = Path(args.out)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(text)
        print(f"wrote {len(text.splitlines())} exposition lines to {out}")
    else:
        sys.stdout.write(text)
    return 0


#: shared ``--help`` epilog of the run-spec subcommands; kept in sync
#: with ``_add_run_arguments`` by ``tests/test_docs_flags.py``
_RUN_EPILOG = """\
fault-tolerance, recovery and telemetry flags:
  --faults SEED:RATE[:LAYER:NODES]   seeded fault injection
  --speculate FACTOR[:QUANTILE]      speculative backup attempts
  --checkpoint-dir DIR               journaled functional step
  --resume                           resume from that journal
  --backend serial|pool|cluster[:W]  functional execution backend
  --registry-dir DIR                 append a RunRecord to the run registry

examples:
  python -m repro.obs export --solver irk --quick --faults 7:0.2 -o trace.json
  python -m repro.obs report --solver pabm --speculate 1.5:0.9
  python -m repro.obs gantt --solver irk --quick --width 100
  python -m repro.obs export --quick --checkpoint-dir ckpt --backend pool:4
  python -m repro.obs calib --solver irk --quick --gate
  python -m repro.obs prom --quick --registry-dir runs
"""

_DIFF_EPILOG = """\
examples:
  python -m repro.obs diff BENCH_pipeline.json new.json --threshold 1.25
  python -m repro.obs diff BENCH_runtime.json new_runtime.json --verbose
  python -m repro.obs diff old_run.json new_run.json --include-wall
"""

#: ``--help`` epilog of the registry-querying subcommands
_REGISTRY_EPILOG = """\
examples:
  python -m repro.obs history --registry-dir runs --last 10
  python -m repro.obs trend --registry-dir runs --metric makespan --last 10
  python -m repro.obs trend --registry-dir runs --key 83a632 --threshold 1.1
"""


# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """Build the ``python -m repro.obs`` argument parser."""
    ap = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Inspect pipeline runs: trace export, analytics, Gantt, diffs.",
    )
    sub = ap.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "export",
        help="run a pipeline and export trace-event JSON",
        epilog=_RUN_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    _add_run_arguments(p)
    p.add_argument("-o", "--out", default="trace.json", help="trace output path")
    p.add_argument(
        "--run-json", help="additionally write flat run metrics (for `diff`)"
    )
    p.set_defaults(func=_cmd_export)

    p = sub.add_parser(
        "report",
        help="print schedule analytics of a run",
        epilog=_RUN_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    _add_run_arguments(p)
    p.add_argument("--run", help="report a previously exported run JSON instead")
    p.add_argument(
        "--per-core", action="store_true", help="include the per-core usage table"
    )
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser(
        "gantt",
        help="ASCII Gantt chart of a run",
        epilog=_RUN_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    _add_run_arguments(p)
    p.add_argument("--width", type=int, default=72, help="chart width in cells")
    p.add_argument("--by", choices=("core", "node"), default="core")
    p.add_argument(
        "--layers", action="store_true", help="also render per-layer group bars"
    )
    p.set_defaults(func=_cmd_gantt)

    p = sub.add_parser(
        "diff",
        help="compare two run/benchmark JSONs; non-zero exit on regression",
        epilog=_DIFF_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p.add_argument("old", help="baseline JSON (run export or BENCH_*.json)")
    p.add_argument("new", help="candidate JSON")
    p.add_argument(
        "--threshold",
        type=float,
        default=1.25,
        help="worst-case ratio before a metric counts as regressed (default 1.25)",
    )
    p.add_argument(
        "--include-wall",
        action="store_true",
        help="also gate on wall-clock *_seconds metrics (noisy)",
    )
    p.add_argument(
        "-v", "--verbose", action="store_true", help="print all compared metrics"
    )
    p.set_defaults(func=_cmd_diff)

    p = sub.add_parser(
        "calib",
        help="predicted-vs-actual cost-model calibration (with --gate: CI gate)",
        epilog=_RUN_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    _add_run_arguments(p)
    p.add_argument(
        "--top", type=int, default=5, help="worst offenders to list (default 5)"
    )
    p.add_argument(
        "--gate",
        action="store_true",
        help="exit non-zero when |bias| or MAPE exceed the thresholds",
    )
    p.add_argument(
        "--max-bias",
        type=float,
        default=1.0,
        help="gate threshold on |mean signed relative error| (default 1.0)",
    )
    p.add_argument(
        "--max-mape",
        type=float,
        default=1.0,
        help="gate threshold on mean absolute relative error (default 1.0)",
    )
    p.add_argument(
        "--distort",
        type=float,
        default=1.0,
        metavar="FACTOR",
        help="scale Tsymb by FACTOR before calibrating -- a deliberately "
        "mispriced model for exercising the gate (default 1.0: honest)",
    )
    p.set_defaults(func=_cmd_calib)

    p = sub.add_parser(
        "prom",
        help="run a pipeline and render its metrics in Prometheus text format",
        epilog=_RUN_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    _add_run_arguments(p)
    p.add_argument(
        "-o", "--out", help="write the exposition to a file instead of stdout"
    )
    p.set_defaults(func=_cmd_prom)

    p = sub.add_parser(
        "history",
        help="list the persistent run registry",
        epilog=_REGISTRY_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p.add_argument(
        "--registry-dir",
        required=True,
        metavar="DIR",
        help="run-registry directory (holds runs.jsonl)",
    )
    p.add_argument(
        "--key", help="filter by digest-key prefix (program/topology/options)"
    )
    p.add_argument(
        "--last", type=int, default=None, help="show only the N most recent records"
    )
    p.set_defaults(func=_cmd_history)

    p = sub.add_parser(
        "trend",
        help="detect metric drift across recent run records",
        epilog=_REGISTRY_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    p.add_argument(
        "--registry-dir",
        required=True,
        metavar="DIR",
        help="run-registry directory (holds runs.jsonl)",
    )
    p.add_argument(
        "--metric",
        default="makespan",
        help="record field or metrics entry to track (default: makespan)",
    )
    p.add_argument(
        "--key", help="filter by digest-key prefix (program/topology/options)"
    )
    p.add_argument(
        "--last",
        type=int,
        default=10,
        help="window size: latest record vs the median of the earlier "
        "records in the window (default 10)",
    )
    p.add_argument(
        "--threshold",
        type=float,
        default=1.25,
        help="oriented worst/better ratio before the drift exit (default 1.25)",
    )
    p.set_defaults(func=_cmd_trend)
    return ap


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # stdout was piped into head/less and closed early; not an error
        sys.stderr.close()
        return 0
