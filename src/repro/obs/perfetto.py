"""Chrome trace-event / Perfetto JSON export of pipeline runs.

One run produces a single ``trace.json`` loadable in ``ui.perfetto.dev``
(or ``chrome://tracing``) that merges two time bases:

* the **wall-clock** side -- every :class:`~repro.obs.Instrumentation`
  span (pipeline stages, per-layer g-search probes, contention passes)
  becomes a complete (``ph: "X"``) event in a dedicated ``pipeline``
  process; nesting follows the span tree via containment;
* the **simulated** side -- every :class:`~repro.sim.trace.TraceEntry`
  is rendered on one track per *physical core*: a computation slice
  ``[start, start+comp]`` and a communication slice tiling the rest of
  ``[start, finish]``, plus a separate per-core wait track showing the
  re-distribution delay that was charged before the start.  Data
  dependencies become flow arrows from the producer's finish to the
  consumer's start.

Timestamps are microseconds (the trace-event unit); both sides are
normalized to start at 0, so the absolute offset between wall clock and
simulated clock carries no meaning -- only the per-process structure
does.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "MICROS",
    "span_events",
    "worker_span_events",
    "execution_trace_events",
    "pipeline_trace",
    "merged_trace",
    "write_trace",
    "validate_trace_events",
]

#: trace-event timestamps are microseconds; artefact times are seconds
MICROS = 1e6

#: pid of the wall-clock (instrumentation span) process
SPAN_PID = 1
#: pid of the pool-worker wall-clock process (one tid per worker)
WORKER_PID = 5
#: first pid of the simulated per-node processes
CORE_PID_BASE = 10


def _meta(pid: int, name: str, value: str, tid: int = 0) -> Dict[str, Any]:
    return {
        "ph": "M",
        "name": name,
        "pid": pid,
        "tid": tid,
        "ts": 0,
        "args": {"name": value},
    }


def span_events(
    obs, *, pid: int = SPAN_PID, process_name: str = "pipeline (wall clock)"
) -> List[Dict[str, Any]]:
    """Complete events for every instrumentation span of ``obs``.

    All spans live on one thread of ``pid``; because spans strictly nest
    in time, the viewer reconstructs the tree from containment.  Span
    ids and metadata travel in ``args``.  Spans carrying a ``worker``
    meta key ran concurrently on pool workers -- they would break the
    single-thread nesting invariant and are rendered separately by
    :func:`worker_span_events`.
    """
    spans = [s for s in obs.spans if "worker" not in s.meta]
    if not spans:
        return []
    t0 = min(s.start for s in obs.spans)
    events: List[Dict[str, Any]] = [
        _meta(pid, "process_name", process_name),
        _meta(pid, "thread_name", "stages", tid=1),
    ]
    for s in spans:
        args: Dict[str, Any] = {"id": s.sid}
        if s.parent_id is not None:
            args["parent_id"] = s.parent_id
        args.update(s.meta)
        events.append(
            {
                "ph": "X",
                "name": s.name,
                "cat": "stage",
                "pid": pid,
                "tid": 1,
                "ts": (s.start - t0) * MICROS,
                "dur": s.duration * MICROS,
                "args": args,
            }
        )
    return events


def worker_span_events(
    obs, *, pid: int = WORKER_PID, process_name: str = "pool workers (wall clock)"
) -> List[Dict[str, Any]]:
    """Complete events for spans executed on pool workers.

    The :class:`~repro.runtime.backends.ProcessPoolBackend` re-emits
    every worker attempt as a span whose meta carries the executing
    ``worker`` id; those spans overlap in time (that is the point of the
    pool), so they get one *thread per worker* in a dedicated process
    instead of joining the single nested wall-clock track.  Timestamps
    share :func:`span_events`' normalisation origin so both processes
    line up in the viewer.
    """
    spans = [s for s in obs.spans if "worker" in s.meta]
    if not spans:
        return []
    t0 = min(s.start for s in obs.spans)
    workers = sorted({int(s.meta["worker"]) for s in spans})
    events: List[Dict[str, Any]] = [_meta(pid, "process_name", process_name)]
    for w in workers:
        events.append(_meta(pid, "thread_name", f"worker {w}", tid=w + 1))
    for s in spans:
        args: Dict[str, Any] = {"id": s.sid}
        args.update(s.meta)
        events.append(
            {
                "ph": "X",
                "name": str(s.meta.get("task", s.name)),
                "cat": "speculation" if s.name == "task_backup" else "worker",
                "pid": pid,
                "tid": int(s.meta["worker"]) + 1,
                "ts": (s.start - t0) * MICROS,
                "dur": s.duration * MICROS,
                "args": args,
            }
        )
    return events


def _finite(value: float, fallback: float = 0.0) -> float:
    """Coerce NaN/inf to ``fallback``; trace viewers reject non-finite
    timestamps and negative durations, so the export sanitizes instead
    of emitting a file Perfetto silently drops."""
    try:
        v = float(value)
    except (TypeError, ValueError):
        return fallback
    return v if math.isfinite(v) else fallback


def _core_tracks(machine) -> Dict[Any, Tuple[int, int]]:
    """Map each core to its ``(pid, run-tid)``; wait tid is run tid + 1."""
    tracks: Dict[Any, Tuple[int, int]] = {}
    for i, core in enumerate(machine.cores()):
        tracks[core] = (CORE_PID_BASE + core.node, 2 * i)
    return tracks


def execution_trace_events(
    trace,
    graph=None,
    *,
    pid_offset: int = 0,
    flows: bool = True,
) -> List[Dict[str, Any]]:
    """Trace-event list for a simulated :class:`ExecutionTrace`.

    One process per compute node, two threads per physical core: the run
    track carries the comp/comm slices that exactly tile each task's
    ``[start, finish]`` interval on that core, the wait track carries the
    re-distribution delay charged before the start.  With ``graph``,
    flow arrows connect producer finish to consumer start along every
    data dependency present in the trace.
    """
    tracks = _core_tracks(trace.machine)
    entries = sorted(trace.entries, key=lambda e: (e.start, e.task.name))
    used_cores = sorted(
        {c for e in entries for c in e.cores}
        | {c for e in entries for c in getattr(e, "backup_cores", ())}
    )
    used_nodes = sorted({c.node for c in used_cores})

    events: List[Dict[str, Any]] = []
    for node in used_nodes:
        pid = CORE_PID_BASE + node + pid_offset
        events.append(_meta(pid, "process_name", f"node {node}"))
    for core in used_cores:
        pid, tid = tracks[core]
        pid += pid_offset
        events.append(_meta(pid, "thread_name", f"core {core.label}", tid=tid))
        events.append(
            {
                "ph": "M",
                "name": "thread_sort_index",
                "pid": pid,
                "tid": tid,
                "ts": 0,
                "args": {"sort_index": tid},
            }
        )

    wait_cores = set()
    for e in entries:
        # failed attempts + backoff precede the successful attempt, so the
        # fault slice leads and comp/comm tile the rest of [start, finish]
        overhead = max(0.0, _finite(getattr(e, "fault_overhead", 0.0)))
        spec = getattr(e, "speculation", "")
        # sanitize the interval itself: a 0.0 or NaN-adjacent simulated
        # duration must still tile [start, finish] without inverting it
        start = max(0.0, _finite(e.start))
        finish = max(start, _finite(e.finish, start))
        comp_time = max(0.0, _finite(e.comp_time))
        redist_wait = max(0.0, _finite(e.redist_wait))
        # a winning backup cancels the primary at the backup's finish, so
        # every primary slice is clamped to [start, finish]
        comp_start = min(start + overhead, finish)
        comp_end = min(comp_start + comp_time, finish)
        args = {
            "width": len(e.cores),
            "comp_time": e.comp_time,
            "comm_time": e.comm_time,
            "redist_wait": e.redist_wait,
        }
        if getattr(e, "retries", 0):
            args["retries"] = e.retries
        if overhead > 0:
            args["fault_overhead"] = overhead
        if spec:
            args["speculation"] = spec
            args["primary_finish"] = e.primary_finish
        for c in e.cores:
            pid, tid = tracks[c]
            pid += pid_offset
            if overhead > 0 and comp_start > start:
                events.append(
                    {
                        "ph": "X",
                        "name": f"{e.task.name} (retries)",
                        "cat": "fault",
                        "pid": pid,
                        "tid": tid,
                        "ts": start * MICROS,
                        "dur": (comp_start - start) * MICROS,
                        "args": args,
                    }
                )
            events.append(
                {
                    "ph": "X",
                    "name": e.task.name,
                    "cat": "comp",
                    "pid": pid,
                    "tid": tid,
                    "ts": comp_start * MICROS,
                    "dur": (comp_end - comp_start) * MICROS,
                    "args": args,
                }
            )
            # the comm slice tiles the remainder of [start, finish]
            # exactly (comp + comm == duration up to float error)
            if finish > comp_end:
                events.append(
                    {
                        "ph": "X",
                        "name": f"{e.task.name} (comm)",
                        "cat": "comm",
                        "pid": pid,
                        "tid": tid,
                        "ts": comp_end * MICROS,
                        "dur": (finish - comp_end) * MICROS,
                        "args": args,
                    }
                )
            if redist_wait > 0:
                wait_start = max(0.0, start - redist_wait)
                events.append(
                    {
                        "ph": "X",
                        "name": f"{e.task.name} (redist wait)",
                        "cat": "redist",
                        "pid": pid,
                        "tid": tid + 1,
                        "ts": wait_start * MICROS,
                        "dur": (start - wait_start) * MICROS,
                        "args": args,
                    }
                )
                wait_cores.add(c)
        # speculative backup attempt on its idle cores, threshold to finish
        for c in getattr(e, "backup_cores", ()):
            pid, tid = tracks[c]
            pid += pid_offset
            backup_start = min(max(0.0, _finite(e.backup_start)), finish)
            events.append(
                {
                    "ph": "X",
                    "name": f"{e.task.name} (backup)",
                    "cat": "speculation",
                    "pid": pid,
                    "tid": tid,
                    "ts": backup_start * MICROS,
                    "dur": (finish - backup_start) * MICROS,
                    "args": args,
                }
            )
    for core in sorted(wait_cores):
        pid, tid = tracks[core]
        events.append(
            _meta(
                pid + pid_offset,
                "thread_name",
                f"core {core.label} (redist wait)",
                tid=tid + 1,
            )
        )

    if flows and graph is not None:
        events.extend(_flow_events(trace, graph, tracks, pid_offset))
    return events


def _flow_events(trace, graph, tracks, pid_offset: int) -> List[Dict[str, Any]]:
    events: List[Dict[str, Any]] = []
    flow_id = 1
    for u, v, _flows in graph.edges():
        if u not in trace or v not in trace:
            continue
        eu, ev = trace[u], trace[v]
        pid_u, tid_u = tracks[eu.cores[0]]
        pid_v, tid_v = tracks[ev.cores[0]]
        common = {"cat": "dataflow", "name": "dep", "id": flow_id}
        events.append(
            {
                "ph": "s",
                "pid": pid_u + pid_offset,
                "tid": tid_u,
                # bind strictly inside the producer's final slice
                "ts": max(eu.start, eu.finish - 1e-9) * MICROS,
                **common,
            }
        )
        events.append(
            {
                "ph": "f",
                "bp": "e",
                "pid": pid_v + pid_offset,
                "tid": tid_v,
                "ts": ev.start * MICROS,
                **common,
            }
        )
        flow_id += 1
    return events


def _sorted_events(events: Iterable[Dict[str, Any]]) -> List[Dict[str, Any]]:
    # metadata first, then per-track chronological; at equal ts the
    # longer slice first so complete events nest for the viewer
    order = {"M": 0}
    return sorted(
        events,
        key=lambda e: (
            order.get(e["ph"], 1),
            e["pid"],
            e["tid"],
            e.get("ts", 0),
            -e.get("dur", 0),
        ),
    )


def pipeline_trace(
    result, *, flows: bool = True, run_meta: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """The full trace-event JSON document of one pipeline run.

    ``result`` is a :class:`~repro.pipeline.PipelineResult`; the
    document merges its instrumentation spans and (when the pipeline
    simulated) its execution trace.  ``run_meta`` (solver, cores,
    backend, program digest, ...) is stamped into ``otherData["run"]``
    and as ``process_labels`` metadata on every process, so an archived
    trace stays self-describing; ``None`` keeps the document
    byte-identical to earlier releases.
    """
    events = span_events(result.obs)
    events.extend(worker_span_events(result.obs))
    if result.trace is not None:
        events.extend(execution_trace_events(result.trace, result.graph, flows=flows))
    reschedule = getattr(result, "reschedule", None)
    if reschedule is not None and result.trace is not None:
        # global instant marker on the first surviving node's process at
        # the moment the platform shrank and the suffix was re-planned
        nodes = sorted({c.node for e in result.trace.entries for c in e.cores})
        events.append(
            {
                "ph": "i",
                "s": "g",
                "name": f"core loss: -{reschedule.loss.nodes} node(s)",
                "cat": "fault",
                "pid": CORE_PID_BASE + (nodes[0] if nodes else 0),
                "tid": 0,
                "ts": reschedule.prefix_makespan * MICROS,
                "args": reschedule.summary(),
            }
        )
    other: Dict[str, Any] = {
        "exporter": "repro.obs.perfetto",
        "scheduler": result.scheduling.scheduler,
        "nprocs": result.scheduling.nprocs,
        "tasks": len(result.graph),
        "predicted_makespan": result.predicted_makespan,
        "simulated_makespan": result.trace.makespan if result.trace else None,
    }
    if result.meta.get("faults"):
        other["faults"] = result.meta["faults"]
    if result.meta.get("speculation"):
        other["speculation"] = result.meta["speculation"]
        if result.trace is not None:
            other["speculation_summary"] = result.trace.speculation_summary()
    if reschedule is not None:
        other["reschedule"] = reschedule.summary()
    if run_meta:
        other["run"] = dict(run_meta)
        label = ", ".join(f"{k}={v}" for k, v in run_meta.items())
        for pid in sorted(
            {
                ev["pid"]
                for ev in events
                if ev.get("ph") == "M" and ev.get("name") == "process_name"
            }
        ):
            events.append(
                {
                    "ph": "M",
                    "name": "process_labels",
                    "pid": pid,
                    "tid": 0,
                    "ts": 0,
                    "args": {"labels": label},
                }
            )
    return {
        "traceEvents": _sorted_events(events),
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def merged_trace(named_results: Sequence[Tuple[str, Any]]) -> Dict[str, Any]:
    """One document holding several runs, each in its own pid block.

    ``named_results`` is ``[(name, PipelineResult), ...]``; run ``i``'s
    processes are shifted into the pid block ``i * 1000`` and its
    process names prefixed with ``name`` so the runs stay side by side
    in the viewer.
    """
    events: List[Dict[str, Any]] = []
    info: List[Dict[str, Any]] = []
    for i, (name, result) in enumerate(named_results):
        offset = i * 1000
        run_events = span_events(result.obs, pid=SPAN_PID + offset)
        run_events.extend(worker_span_events(result.obs, pid=WORKER_PID + offset))
        if result.trace is not None:
            run_events.extend(
                execution_trace_events(result.trace, result.graph, pid_offset=offset)
            )
        for ev in run_events:
            if ev["ph"] == "M" and ev["name"] == "process_name":
                ev["args"]["name"] = f"{name}: {ev['args']['name']}"
        events.extend(run_events)
        info.append(
            {
                "name": name,
                "pid_offset": offset,
                "makespan": result.trace.makespan if result.trace else None,
            }
        )
    return {
        "traceEvents": _sorted_events(events),
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.obs.perfetto", "runs": info},
    }


def write_trace(path, document: Dict[str, Any]) -> Path:
    """Write a trace-event document (or raw event list) to ``path``."""
    if isinstance(document, list):
        document = {"traceEvents": _sorted_events(document), "displayTimeUnit": "ms"}
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(document, indent=1, default=str) + "\n")
    return out


def validate_trace_events(events: Sequence[Dict[str, Any]]) -> List[str]:
    """Schema-check a trace-event list; returns the list of problems.

    Checks the invariants the test-suite and the viewer rely on: every
    event has a phase, complete events carry non-negative ``ts``/``dur``
    and integer ``pid``/``tid``, and per-track start times are
    monotonically non-decreasing in document order.
    """
    problems: List[str] = []
    last_ts: Dict[Tuple[int, int], float] = {}
    for i, ev in enumerate(events):
        ph = ev.get("ph")
        if ph is None:
            problems.append(f"event {i}: missing 'ph'")
            continue
        if ph == "M":
            continue
        for key in ("ts", "pid", "tid"):
            if key not in ev:
                problems.append(f"event {i} ({ph}): missing {key!r}")
        if not isinstance(ev.get("pid"), int) or not isinstance(ev.get("tid"), int):
            problems.append(f"event {i} ({ph}): pid/tid must be integers")
            continue
        ts = ev.get("ts", 0)
        if not math.isfinite(ts):
            # NaN compares False against everything, so the sign checks
            # below would silently pass a timestamp the viewer rejects
            problems.append(f"event {i} ({ph}): non-finite ts {ts}")
            continue
        if ts < 0:
            problems.append(f"event {i} ({ph}): negative ts {ts}")
        if ph == "X":
            dur = ev.get("dur")
            if dur is None:
                problems.append(f"event {i}: complete event without 'dur'")
            elif not math.isfinite(dur):
                problems.append(f"event {i}: non-finite dur {dur}")
            elif dur < 0:
                problems.append(f"event {i}: negative dur {dur}")
            track = (ev["pid"], ev["tid"])
            if ts < last_ts.get(track, 0.0) - 1e-6:
                problems.append(
                    f"event {i}: ts {ts} goes backwards on track {track}"
                )
            last_ts[track] = max(last_ts.get(track, 0.0), ts)
    return problems
