"""Structured-event instrumentation for the scheduling pipeline.

One :class:`Instrumentation` object travels through a pipeline run and
collects three kinds of observations:

* **spans** -- named wall-clock timers (``with obs.span("schedule"):``),
  nested spans record their parent for later tree reconstruction;
* **counters** -- monotonically accumulated numeric totals
  (``obs.count("gsearch.probes")``);
* **records** -- structured per-event dictionaries, e.g. one record per
  scheduled layer with the chosen group count.

Everything is in-memory, dependency-free and cheap enough to stay
enabled by default; :meth:`Instrumentation.to_json` exports a run for
offline analysis and the benchmark harness.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

__all__ = ["SpanRecord", "Instrumentation"]


@dataclass
class SpanRecord:
    """One completed (or still open) named timer."""

    name: str
    start: float
    duration: float = 0.0
    parent: Optional[str] = None
    meta: Dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
        }
        if self.parent is not None:
            out["parent"] = self.parent
        if self.meta:
            out["meta"] = dict(self.meta)
        return out


class Instrumentation:
    """Collector for spans, counters and structured records.

    The default clock is :func:`time.perf_counter`; tests inject a fake
    clock for deterministic durations.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter) -> None:
        self._clock = clock
        self.spans: List[SpanRecord] = []
        self.counters: Dict[str, float] = {}
        self.records: List[Dict[str, Any]] = []
        self._stack: List[SpanRecord] = []

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, **meta: Any) -> Iterator[SpanRecord]:
        """Time a named stage; spans nest and record their parent."""
        rec = SpanRecord(
            name=name,
            start=self._clock(),
            parent=self._stack[-1].name if self._stack else None,
            meta=dict(meta),
        )
        self.spans.append(rec)
        self._stack.append(rec)
        try:
            yield rec
        finally:
            rec.duration = self._clock() - rec.start
            self._stack.pop()

    def span_seconds(self, name: str) -> float:
        """Total duration of all spans with ``name``."""
        return sum(s.duration for s in self.spans if s.name == name)

    def span_names(self) -> List[str]:
        """Names of the recorded spans, in completion-start order."""
        return [s.name for s in self.spans]

    # ------------------------------------------------------------------
    # counters
    # ------------------------------------------------------------------
    def count(self, name: str, inc: float = 1) -> None:
        """Accumulate ``inc`` into counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + inc

    def set_counter(self, name: str, value: float) -> None:
        """Overwrite counter ``name`` (gauges, e.g. final cache stats)."""
        self.counters[name] = value

    def counter(self, name: str, default: float = 0) -> float:
        return self.counters.get(name, default)

    # ------------------------------------------------------------------
    # structured records
    # ------------------------------------------------------------------
    def record(self, kind: str, **fields: Any) -> None:
        """Append one structured event of ``kind``."""
        entry: Dict[str, Any] = {"kind": kind}
        entry.update(fields)
        self.records.append(entry)

    def records_of(self, kind: str) -> List[Dict[str, Any]]:
        return [r for r in self.records if r.get("kind") == kind]

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "spans": [s.to_dict() for s in self.spans],
            "counters": dict(self.counters),
            "records": [dict(r) for r in self.records],
        }

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Instrumentation(spans={len(self.spans)}, "
            f"counters={len(self.counters)}, records={len(self.records)})"
        )
