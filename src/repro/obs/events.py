"""Structured-event instrumentation for the scheduling pipeline.

One :class:`Instrumentation` object travels through a pipeline run and
collects three kinds of observations:

* **spans** -- named wall-clock timers (``with obs.span("schedule"):``),
  nested spans record their parent for later tree reconstruction;
* **counters** -- monotonically accumulated numeric totals
  (``obs.count("gsearch.probes")``);
* **records** -- structured per-event dictionaries, e.g. one record per
  scheduled layer with the chosen group count.

Everything is in-memory, dependency-free and cheap enough to stay
enabled by default; :meth:`Instrumentation.to_json` exports a run for
offline analysis and the benchmark harness.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional

from .metrics import Gauge, Histogram

__all__ = ["SpanRecord", "Instrumentation"]


@dataclass
class SpanRecord:
    """One completed (or still open) named timer.

    ``sid`` is a per-:class:`Instrumentation` unique id and
    ``parent_id`` the enclosing span's ``sid``; same-named spans (e.g.
    one ``layer`` span per scheduled layer) stay distinguishable in the
    reconstructed tree.  ``parent`` keeps the enclosing span's *name*
    for backward compatibility.
    """

    name: str
    start: float
    duration: float = 0.0
    parent: Optional[str] = None
    meta: Dict[str, Any] = field(default_factory=dict)
    sid: int = 0
    parent_id: Optional[int] = None

    def to_dict(self) -> Dict[str, Any]:
        """Export the span as a JSON-serialisable dict."""
        out: Dict[str, Any] = {
            "name": self.name,
            "id": self.sid,
            "start": self.start,
            "duration": self.duration,
        }
        if self.parent is not None:
            out["parent"] = self.parent
        if self.parent_id is not None:
            out["parent_id"] = self.parent_id
        if self.meta:
            out["meta"] = dict(self.meta)
        return out


class Instrumentation:
    """Collector for spans, counters and structured records.

    The default clock is :func:`time.perf_counter` -- a *monotonic*
    clock, so span durations never go negative under NTP adjustments;
    tests inject a fake clock for deterministic durations.  The epoch
    origin sampled at construction (:attr:`epoch`, :meth:`epoch_of`)
    maps clock timestamps back to wall-clock time for trace alignment.

    An optional :class:`~repro.obs.registry.MetricsRegistry` can be
    attached; :meth:`publish` then mirrors live heartbeat gauges into it
    with labels (backends report tasks done/total, per-worker busy
    fraction, speculation in flight through this hook).
    """

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        registry: Optional[Any] = None,
    ) -> None:
        self._clock = clock
        #: optional labeled MetricsRegistry mirroring published gauges
        self.registry = registry
        #: ``(epoch seconds, clock seconds)`` sampled together at
        #: construction: wall time of any span is
        #: ``epoch[0] + (span.start - epoch[1])``
        self.epoch: tuple = (time.time(), self._clock())
        self.spans: List[SpanRecord] = []
        self.counters: Dict[str, float] = {}
        self.records: List[Dict[str, Any]] = []
        self.histograms: Dict[str, Histogram] = {}
        self.gauges: Dict[str, Gauge] = {}
        self._stack: List[SpanRecord] = []
        self._next_sid: int = 1

    def epoch_of(self, clock_time: float) -> float:
        """Wall-clock epoch seconds of a clock timestamp (trace alignment)."""
        return self.epoch[0] + (clock_time - self.epoch[1])

    # ------------------------------------------------------------------
    # spans
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, **meta: Any) -> Iterator[SpanRecord]:
        """Time a named stage; spans nest and record their parent."""
        rec = SpanRecord(
            name=name,
            start=self._clock(),
            parent=self._stack[-1].name if self._stack else None,
            meta=dict(meta),
            sid=self._next_sid,
            parent_id=self._stack[-1].sid if self._stack else None,
        )
        self._next_sid += 1
        self.spans.append(rec)
        self._stack.append(rec)
        try:
            yield rec
        finally:
            rec.duration = self._clock() - rec.start
            self._stack.pop()

    def emit_span(
        self, name: str, start: float, duration: float, **meta: Any
    ) -> SpanRecord:
        """Append an externally timed span.

        Used for work that ran outside this process (e.g. a
        :class:`~repro.runtime.backends.ProcessPoolBackend` worker
        attempt): ``start`` must already be converted into this
        instrumentation's clock frame.  The span nests under the
        currently open span, if any, but never opens one itself.
        """
        rec = SpanRecord(
            name=name,
            start=start,
            duration=duration,
            parent=self._stack[-1].name if self._stack else None,
            meta=dict(meta),
            sid=self._next_sid,
            parent_id=self._stack[-1].sid if self._stack else None,
        )
        self._next_sid += 1
        self.spans.append(rec)
        return rec

    def span_seconds(self, name: str) -> float:
        """Total duration of all spans with ``name``."""
        return sum(s.duration for s in self.spans if s.name == name)

    def span_names(self) -> List[str]:
        """Names of the recorded spans, in completion-start order."""
        return [s.name for s in self.spans]

    # ------------------------------------------------------------------
    # counters
    # ------------------------------------------------------------------
    def count(self, name: str, inc: float = 1) -> None:
        """Accumulate ``inc`` into counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + inc

    def set_counter(self, name: str, value: float) -> None:
        """Overwrite counter ``name`` (gauges, e.g. final cache stats)."""
        self.counters[name] = value

    def counter(self, name: str, default: float = 0) -> float:
        """Current value of a counter (``default`` if never bumped)."""
        return self.counters.get(name, default)

    # ------------------------------------------------------------------
    # histograms and gauges
    # ------------------------------------------------------------------
    def observe(self, name: str, value: float) -> None:
        """Record ``value`` into the histogram ``name``."""
        if name not in self.histograms:
            self.histograms[name] = Histogram(name)
        self.histograms[name].observe(value)

    def histogram(self, name: str) -> Histogram:
        """The histogram ``name`` (an empty one when never observed)."""
        return self.histograms.get(name, Histogram(name))

    def gauge(self, name: str, value: Optional[float] = None) -> Gauge:
        """Get (and with ``value`` set) the gauge ``name``."""
        if name not in self.gauges:
            self.gauges[name] = Gauge(name)
        if value is not None:
            self.gauges[name].set(value)
        return self.gauges[name]

    def publish(self, name: str, value: float, **labels: Any) -> None:
        """Publish a live heartbeat gauge, mirrored into the registry.

        Always lands in the plain :attr:`gauges` (keyed
        ``name{k=v,...}`` when labels are given, so distinct label sets
        stay distinct); when a
        :class:`~repro.obs.registry.MetricsRegistry` is attached, the
        labeled gauge there is updated too -- that is what
        ``repro.obs prom`` renders while a backend run is in flight.
        """
        if labels:
            key = name + "{" + ",".join(
                f"{k}={labels[k]}" for k in sorted(labels)
            ) + "}"
        else:
            key = name
        self.gauge(key, value)
        if self.registry is not None:
            self.registry.gauge(name, **labels).set(value)

    # ------------------------------------------------------------------
    # structured records
    # ------------------------------------------------------------------
    def record(self, kind: str, **fields: Any) -> None:
        """Append one structured event of ``kind``."""
        entry: Dict[str, Any] = {"kind": kind}
        entry.update(fields)
        self.records.append(entry)

    def records_of(self, kind: str) -> List[Dict[str, Any]]:
        """All structured records of one kind."""
        return [r for r in self.records if r.get("kind") == kind]

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Export all spans, counters, and records as a dict."""
        out: Dict[str, Any] = {
            "spans": [s.to_dict() for s in self.spans],
            "counters": dict(self.counters),
            "records": [dict(r) for r in self.records],
            "epoch_origin": {
                "epoch_seconds": self.epoch[0],
                "clock_seconds": self.epoch[1],
            },
        }
        if self.histograms:
            out["histograms"] = {k: h.to_dict() for k, h in self.histograms.items()}
        if self.gauges:
            out["gauges"] = {k: g.to_dict() for k, g in self.gauges.items()}
        return out

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Export :meth:`to_dict` as a JSON string."""
        return json.dumps(self.to_dict(), indent=indent, default=str)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Instrumentation(spans={len(self.spans)}, "
            f"counters={len(self.counters)}, records={len(self.records)})"
        )
