"""Observability for pipeline runs: events, metrics, traces, rendering.

* :mod:`repro.obs.events` -- the in-run collector
  (:class:`Instrumentation`: spans, counters, records, histograms);
* :mod:`repro.obs.metrics` -- :class:`Histogram` / :class:`Gauge`
  primitives and the derived :class:`ScheduleAnalysis`;
* :mod:`repro.obs.perfetto` -- Chrome trace-event / Perfetto export;
* :mod:`repro.obs.gantt` -- terminal-side Gantt rendering;
* :mod:`repro.obs.cli` -- the ``python -m repro.obs`` command line
  (export, report, gantt and the benchmark regression ``diff`` gate).
"""

from .events import Instrumentation, SpanRecord
from .gantt import render_layers, render_trace
from .metrics import Gauge, Histogram, ScheduleAnalysis, analyze
from .perfetto import (
    execution_trace_events,
    merged_trace,
    pipeline_trace,
    span_events,
    validate_trace_events,
    write_trace,
)

__all__ = [
    "Instrumentation",
    "SpanRecord",
    "Histogram",
    "Gauge",
    "ScheduleAnalysis",
    "analyze",
    "span_events",
    "execution_trace_events",
    "pipeline_trace",
    "merged_trace",
    "write_trace",
    "validate_trace_events",
    "render_trace",
    "render_layers",
]
