"""Observability for pipeline runs: events, metrics, traces, rendering.

* :mod:`repro.obs.events` -- the in-run collector
  (:class:`Instrumentation`: spans, counters, records, histograms);
* :mod:`repro.obs.metrics` -- :class:`Histogram` / :class:`Gauge`
  primitives and the derived :class:`ScheduleAnalysis`;
* :mod:`repro.obs.registry` -- the labeled :class:`MetricsRegistry`
  (with Prometheus text exposition) and the persistent
  :class:`RunRegistry` of digest-keyed :class:`RunRecord` entries;
* :mod:`repro.obs.calibrate` -- predicted-vs-actual cost-model
  calibration (:class:`CalibrationReport`);
* :mod:`repro.obs.perfetto` -- Chrome trace-event / Perfetto export;
* :mod:`repro.obs.gantt` -- terminal-side Gantt rendering;
* :mod:`repro.obs.cli` -- the ``python -m repro.obs`` command line
  (export, report, gantt, the benchmark regression ``diff`` gate,
  ``history``/``trend`` over the run registry, ``calib`` and ``prom``).
"""

from .calibrate import CalibrationReport, TaskCalibration, calibrate_result, calibrate_spans
from .events import Instrumentation, SpanRecord
from .gantt import render_layers, render_trace
from .metrics import Gauge, Histogram, ScheduleAnalysis, analyze
from .perfetto import (
    execution_trace_events,
    merged_trace,
    pipeline_trace,
    span_events,
    validate_trace_events,
    write_trace,
)
from .registry import (
    Counter,
    MetricsRegistry,
    RunRecord,
    RunRegistry,
    options_digest,
    program_digest,
    publish_result,
    record_from_result,
    topology_digest,
)

__all__ = [
    "Instrumentation",
    "SpanRecord",
    "Histogram",
    "Gauge",
    "Counter",
    "ScheduleAnalysis",
    "analyze",
    "MetricsRegistry",
    "RunRecord",
    "RunRegistry",
    "program_digest",
    "topology_digest",
    "options_digest",
    "record_from_result",
    "publish_result",
    "CalibrationReport",
    "TaskCalibration",
    "calibrate_result",
    "calibrate_spans",
    "span_events",
    "execution_trace_events",
    "pipeline_trace",
    "merged_trace",
    "write_trace",
    "validate_trace_events",
    "render_trace",
    "render_layers",
]
