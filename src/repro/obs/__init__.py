"""Lightweight structured-event observability for pipeline runs."""

from .events import Instrumentation, SpanRecord

__all__ = ["Instrumentation", "SpanRecord"]
