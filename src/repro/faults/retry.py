"""Retry policies and failure records for fault-tolerant execution.

The policy's backoff delays are *seeded*: the jitter of attempt ``a`` of
task ``t`` is drawn from ``random.Random(f"{seed}:{t}:{a}")``, so a
retried run is bit-reproducible no matter in which order tasks execute
and which executor (simulator or functional runtime) asks.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = [
    "RetryPolicy",
    "FailureRecord",
    "TaskExecutionError",
    "InjectedFault",
    "TaskTimeout",
]


class TaskExecutionError(RuntimeError):
    """Base class of failures the retry machinery handles."""


class InjectedFault(TaskExecutionError):
    """A failure injected by a :class:`~repro.faults.FaultPlan`."""


class TaskTimeout(TaskExecutionError):
    """An attempt exceeded the policy's per-attempt timeout."""


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and seeded jitter.

    Parameters
    ----------
    max_retries:
        Extra attempts after the first one (``0`` disables retrying).
    timeout:
        Per-attempt timeout in seconds (``None`` disables the check).
        The functional runtime checks it against the attempt's effective
        duration (wall clock times the injected straggler factor, so
        timeout tests stay deterministic); the simulator charges it as
        the cost of a timed-out attempt.
    backoff / backoff_factor / jitter:
        Delay before retry ``a`` is ``backoff * backoff_factor**a``
        scaled by a uniform factor in ``[1 - jitter, 1 + jitter]``.
    max_delay:
        Hard cap on any single backoff delay.  The exponential
        ``backoff * backoff_factor**attempt`` grows without bound (and
        overflows to ``inf`` for large attempt numbers); every delay is
        clamped to ``max_delay`` after jitter is applied.
    deadline_seconds:
        Overall per-task budget in *effective* seconds (attempt
        durations times straggler factors, plus accounted backoff)
        across all attempts -- distinct from the per-attempt
        ``timeout``.  When retrying a failed attempt would push the
        accumulated budget past the deadline, the task gives up
        immediately with a ``"gave_up"`` failure record whose ``cause``
        is ``"deadline"`` (surfaced in ``RunResult.failures``).  The
        check gates *retries* only: an attempt that eventually succeeds
        is never cut short.  Because every single delay is already
        clamped to ``max_delay``, the accumulated budget stays finite
        however many attempts the policy allows.  ``None`` disables the
        budget.
    seed:
        Seeds the jitter streams (see module docstring).
    """

    max_retries: int = 3
    timeout: Optional[float] = None
    backoff: float = 0.001
    backoff_factor: float = 2.0
    jitter: float = 0.1
    max_delay: float = 60.0
    deadline_seconds: Optional[float] = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be positive")
        if self.backoff < 0 or self.backoff_factor < 1.0:
            raise ValueError("backoff must be >= 0 and backoff_factor >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if not (self.max_delay > 0 and math.isfinite(self.max_delay)):
            raise ValueError("max_delay must be positive and finite")
        if self.deadline_seconds is not None:
            if not (
                self.deadline_seconds > 0 and math.isfinite(self.deadline_seconds)
            ):
                raise ValueError("deadline_seconds must be positive and finite")
            if self.timeout is not None and self.deadline_seconds < self.timeout:
                raise ValueError(
                    "deadline_seconds must be >= timeout (the budget must "
                    "admit at least one full attempt)"
                )

    @property
    def max_attempts(self) -> int:
        return 1 + self.max_retries

    def delay(self, task: str, attempt: int) -> float:
        """Backoff delay before retrying ``task`` after attempt ``attempt``.

        Never exceeds :attr:`max_delay`, whatever the attempt number.
        """
        if attempt < 0:
            raise ValueError("attempt must be >= 0")
        try:
            base = self.backoff * self.backoff_factor ** attempt
        except OverflowError:
            base = self.max_delay
        if not math.isfinite(base):
            base = self.max_delay
        if self.jitter <= 0 or base <= 0:
            return min(base, self.max_delay)
        u = random.Random(f"{self.seed}:{task}:{attempt}").uniform(
            -self.jitter, self.jitter
        )
        return min(base * (1.0 + u), self.max_delay)


@dataclass(frozen=True)
class FailureRecord:
    """One task that did not complete normally.

    ``action`` is ``"gave_up"`` (all attempts failed, outputs missing),
    ``"skipped"`` (an upstream give-up made an input unavailable) or
    ``"recovered"`` (failed attempts, but a retry eventually succeeded).
    """

    task: str
    action: str
    attempts: int = 1
    error: str = ""
    cause: str = ""
    backoff_seconds: float = 0.0

    def to_dict(self) -> Dict[str, Any]:
        """Export the failure record as a dict."""
        out: Dict[str, Any] = {
            "task": self.task,
            "action": self.action,
            "attempts": self.attempts,
        }
        if self.error:
            out["error"] = self.error
        if self.cause:
            out["cause"] = self.cause
        # emitted whenever retries happened: a retried task with zero
        # accumulated backoff ("no backoff configured") must stay
        # distinguishable from a record where the field is simply absent
        if self.backoff_seconds or self.attempts > 1:
            out["backoff_seconds"] = self.backoff_seconds
        return out
