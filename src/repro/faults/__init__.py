"""Fault tolerance: deterministic injection, retries, rescheduling.

The subsystem has three pillars, mirroring the tentpole:

* :class:`FaultPlan` / :class:`CoreLoss` -- seeded, generative fault
  injection (task failures, stragglers, permanent node loss) answering
  identically for the simulator and the functional runtime;
* :class:`RetryPolicy` / :class:`FailureRecord` -- bounded retries with
  per-attempt timeout, exponential backoff and seeded jitter, plus the
  structured failure records ``RunResult.failures`` surfaces;
* :func:`reschedule_on_core_loss` / :class:`RescheduleOutcome` -- re-plan
  the remaining layers of a layered schedule on the reduced platform
  through a fresh scheduling pipeline.
"""

from .plan import CoreLoss, FaultPlan, parse_faults_spec
from .retry import (
    FailureRecord,
    InjectedFault,
    RetryPolicy,
    TaskExecutionError,
    TaskTimeout,
)
from .reschedule import (
    RescheduleOutcome,
    cluster_loss_handler,
    reschedule_on_core_loss,
)

__all__ = [
    "CoreLoss",
    "FaultPlan",
    "parse_faults_spec",
    "RetryPolicy",
    "FailureRecord",
    "TaskExecutionError",
    "InjectedFault",
    "TaskTimeout",
    "RescheduleOutcome",
    "reschedule_on_core_loss",
    "cluster_loss_handler",
]
