"""Deterministic fault plans.

A :class:`FaultPlan` decides, reproducibly, which task executions fail,
which tasks run slow (stragglers) and whether the platform permanently
loses compute nodes mid-run.  The plan is *generative*: instead of
pre-listing every task, each decision is drawn from a private
``random.Random`` stream seeded by ``(seed, kind, task name)``, so the
same plan gives the same answers regardless of execution order, process,
or which executor (the simulator's or the functional runtime's) asks.
Explicit per-task overrides take precedence over the generated
decisions, which is how the targeted tests pin exact fault sites.

``python -m repro.obs`` and ``python -m repro.experiments`` accept the
compact spec syntax parsed by :func:`parse_faults_spec`::

    --faults SEED:RATE            task failures only
    --faults SEED:RATE:LAYER:N    additionally lose N nodes before LAYER
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

__all__ = ["CoreLoss", "FaultPlan", "parse_faults_spec"]


@dataclass(frozen=True)
class CoreLoss:
    """Permanent loss of whole compute nodes at a layer boundary.

    The platforms allocate whole nodes (``Platform.with_cores``), so the
    loss granularity is nodes as well: ``nodes`` nodes disappear before
    layer ``after_layer`` of the layered schedule starts, and all
    remaining layers must be re-scheduled on the reduced core count.
    """

    after_layer: int
    nodes: int = 1

    def __post_init__(self) -> None:
        if self.after_layer < 0:
            raise ValueError("after_layer must be >= 0")
        if self.nodes < 1:
            raise ValueError("at least one node must be lost")


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, deterministic injection of failures, stragglers, node loss.

    Parameters
    ----------
    seed:
        Root of every decision stream; two plans with equal parameters
        answer every query identically.
    failure_rate:
        Probability that a task fails at all; an affected task fails its
        first ``1..max_failures`` attempts (drawn from the same stream)
        and then succeeds.
    slowdown_rate / max_slowdown:
        Probability that a task is a straggler and the upper bound of
        its uniform slowdown factor (``1.0`` = full speed).
    core_loss:
        Optional permanent :class:`CoreLoss` event.
    task_faults / slowdowns:
        Explicit per-task overrides (task name -> number of failing
        attempts / slowdown factor); they win over the generated draws.
    """

    seed: int = 0
    failure_rate: float = 0.0
    max_failures: int = 2
    slowdown_rate: float = 0.0
    max_slowdown: float = 4.0
    core_loss: Optional[CoreLoss] = None
    task_faults: Mapping[str, int] = field(default_factory=dict)
    slowdowns: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not 0.0 <= self.failure_rate <= 1.0:
            raise ValueError("failure_rate must be in [0, 1]")
        if not 0.0 <= self.slowdown_rate <= 1.0:
            raise ValueError("slowdown_rate must be in [0, 1]")
        if self.max_failures < 1:
            raise ValueError("max_failures must be >= 1")
        if self.max_slowdown < 1.0:
            raise ValueError("max_slowdown must be >= 1.0")
        for name, k in self.task_faults.items():
            if k < 0:
                raise ValueError(f"task {name!r}: failure count must be >= 0")
        for name, f in self.slowdowns.items():
            if f < 1.0:
                raise ValueError(f"task {name!r}: slowdown factor must be >= 1.0")

    # ------------------------------------------------------------------
    @classmethod
    def none(cls) -> "FaultPlan":
        """A plan that injects nothing (the explicit 'disabled' value)."""
        return cls()

    @property
    def enabled(self) -> bool:
        return bool(
            self.failure_rate > 0
            or self.slowdown_rate > 0
            or self.core_loss is not None
            or self.task_faults
            or self.slowdowns
        )

    # ------------------------------------------------------------------
    def _stream(self, kind: str, task: str) -> random.Random:
        return random.Random(f"{self.seed}:{kind}:{task}")

    def failures_of(self, task: str) -> int:
        """Number of leading attempts of ``task`` that fail."""
        if task in self.task_faults:
            return self.task_faults[task]
        if self.failure_rate <= 0:
            return 0
        rng = self._stream("fail", task)
        if rng.random() >= self.failure_rate:
            return 0
        return 1 + rng.randrange(self.max_failures)

    def fails(self, task: str, attempt: int) -> bool:
        """Does attempt ``attempt`` (0-based) of ``task`` fail?"""
        return attempt < self.failures_of(task)

    def slowdown(self, task: str, attempt: int = 0) -> float:
        """Straggler factor of ``task`` (``>= 1.0``; 1.0 = full speed).

        ``attempt`` distinguishes speculative backup attempts: attempt 0
        (the primary) keeps the historical ``(seed, "slow", task)``
        stream -- bit-identical to the pre-speculation draws -- while
        attempt ``a >= 1`` draws from its own per-attempt stream, so a
        backup of a straggler may itself be slow, deterministically.
        """
        if attempt == 0 and task in self.slowdowns:
            return self.slowdowns[task]
        if self.slowdown_rate <= 0:
            return 1.0
        rng = self._stream("slow", task if attempt == 0 else f"{task}#b{attempt}")
        if rng.random() >= self.slowdown_rate:
            return 1.0
        return 1.0 + rng.random() * (self.max_slowdown - 1.0)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Export the fault plan parameters as a dict."""
        out: Dict[str, Any] = {
            "seed": self.seed,
            "failure_rate": self.failure_rate,
            "max_failures": self.max_failures,
            "slowdown_rate": self.slowdown_rate,
            "max_slowdown": self.max_slowdown,
        }
        if self.core_loss is not None:
            out["core_loss"] = {
                "after_layer": self.core_loss.after_layer,
                "nodes": self.core_loss.nodes,
            }
        if self.task_faults:
            out["task_faults"] = dict(self.task_faults)
        if self.slowdowns:
            out["slowdowns"] = dict(self.slowdowns)
        return out


def _spec_int(spec: str, field: str, raw: str) -> int:
    """``raw`` as an integer, or a one-line error naming the bad field."""
    try:
        return int(raw)
    except ValueError:
        raise ValueError(
            f"fault spec {spec!r}: {field} must be an integer, got {raw!r}"
        ) from None


def parse_faults_spec(spec: str) -> FaultPlan:
    """Parse the ``SEED:RATE[:LAYER:NODES]`` CLI fault spec.

    ``SEED`` seeds the plan, ``RATE`` is the task failure rate (also used
    as the straggler rate at half strength), and the optional
    ``LAYER:NODES`` pair adds a permanent node loss before ``LAYER``.

    Every malformed field raises a one-line :class:`ValueError` naming
    the offending field, so CLI users see a message instead of a
    traceback: out-of-range rates, non-integer seed/layer/node counts
    and trailing garbage are all rejected.
    """
    parts = spec.split(":")
    if len(parts) not in (2, 4):
        raise ValueError(
            f"fault spec {spec!r} must be SEED:RATE or SEED:RATE:LAYER:NODES"
        )
    seed = _spec_int(spec, "seed", parts[0])
    try:
        rate = float(parts[1])
    except ValueError:
        raise ValueError(
            f"fault spec {spec!r}: rate must be a number, got {parts[1]!r}"
        ) from None
    if not 0.0 <= rate <= 1.0:
        raise ValueError(
            f"fault spec {spec!r}: rate must be in [0, 1], got {rate:g}"
        )
    core_loss = None
    if len(parts) == 4:
        layer = _spec_int(spec, "layer", parts[2])
        nodes = _spec_int(spec, "nodes", parts[3])
        if layer < 0:
            raise ValueError(
                f"fault spec {spec!r}: layer must be >= 0, got {layer}"
            )
        if nodes < 1:
            raise ValueError(
                f"fault spec {spec!r}: nodes must be >= 1, got {nodes}"
            )
        core_loss = CoreLoss(after_layer=layer, nodes=nodes)
    return FaultPlan(
        seed=seed,
        failure_rate=rate,
        slowdown_rate=rate / 2.0,
        core_loss=core_loss,
    )
