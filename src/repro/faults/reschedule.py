"""Rescheduling the remaining layers after a permanent core loss.

When a :class:`~repro.faults.plan.CoreLoss` strikes between two layers of
a layered schedule, the layers already executed keep their trace, but
every remaining layer must be re-planned: the scheduler is re-invoked
through a fresh :class:`~repro.pipeline.SchedulingPipeline` on the
reduced symbolic core count, the mapping strategy re-pins the groups to
the surviving nodes, and the simulator predicts the degraded makespan of
the combined prefix + suffix execution.  The functional runtime can then
re-execute with the merged group sizes (:meth:`RescheduleOutcome.group_sizes`).

The split is expressed entirely in terms of existing artefacts -- no
scheduler grows a special fault mode:

* the *prefix* is the already-simulated trace of layers ``< after_layer``;
* the *suffix* is a sub-:class:`~repro.core.graph.TaskGraph` of the
  remaining (expanded) tasks with the original data flows, scheduled on
  ``platform.with_cores(P - lost_nodes * cores_per_node)``;
* the combined trace lives on the *original* machine: the reduced
  platform is a node prefix (``Machine.subset``), so every surviving
  core id stays valid.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, Optional

from ..core.costmodel import CachedCostEvaluator, CostModel
from ..core.graph import TaskGraph
from ..core.schedule import LayeredSchedule
from ..core.task import MTask
from ..obs import Instrumentation
from ..sim.trace import ExecutionTrace
from .plan import CoreLoss

__all__ = [
    "RescheduleOutcome",
    "reschedule_on_core_loss",
    "cluster_loss_handler",
]


@dataclass
class RescheduleOutcome:
    """Everything a core-loss recovery produced."""

    #: combined degraded trace (prefix entries + shifted suffix entries),
    #: on the original machine
    trace: ExecutionTrace
    loss: CoreLoss
    #: layer index the split happened at (clamped to the layer count)
    cut: int
    #: the platform the suffix was re-scheduled on
    reduced_platform: object
    #: finish time of the prefix (the suffix starts here)
    prefix_makespan: float
    #: the original layered schedule the prefix ran under
    original_layered: LayeredSchedule
    #: full pipeline result of the suffix re-schedule (``None`` when the
    #: loss struck after the last layer and nothing needed re-planning)
    suffix: Optional[object] = None

    @property
    def degraded_makespan(self) -> float:
        return self.trace.makespan

    @property
    def rescheduled(self) -> bool:
        return self.suffix is not None

    def group_sizes(self) -> Dict[MTask, int]:
        """Per-task group sizes of the degraded run (prefix sizes from the
        original schedule, suffix sizes from the re-schedule's placement),
        ready for :func:`~repro.runtime.executor.run_program`."""
        sizes: Dict[MTask, int] = {}
        for layer in self.original_layered.layers[: self.cut]:
            for gi, tasks in enumerate(layer.groups):
                width = layer.group_sizes[gi]
                for t in tasks:
                    for m in self.original_layered.expand(t):
                        sizes[m] = m.clamp_procs(width)
        if self.suffix is not None and self.suffix.placement is not None:
            for task, cores in self.suffix.placement.task_cores.items():
                sizes[task] = len(cores)
        return sizes

    def summary(self) -> Dict[str, object]:
        """Export the reschedule outcome as a dict."""
        return {
            "after_layer": self.loss.after_layer,
            "lost_nodes": self.loss.nodes,
            "cut": self.cut,
            "reduced_cores": self.reduced_platform.total_cores,
            "prefix_makespan": self.prefix_makespan,
            "degraded_makespan": self.degraded_makespan,
            "rescheduled": self.rescheduled,
        }


def _reduced_scheduler(scheduler, platform):
    """A copy of ``scheduler`` bound to the reduced platform.

    Works for any dataclass scheduler with a ``cost`` field (the
    layer-based algorithm and the baselines built on it); anything else
    falls back to a fresh :class:`LayerBasedScheduler` on a plain cost
    model, which is the re-planning algorithm the tentpole mandates.
    """
    from ..scheduling.layered import LayerBasedScheduler

    base = scheduler.cost if scheduler is not None else None
    if isinstance(base, CachedCostEvaluator):
        base = base.model
    if not isinstance(base, CostModel):
        base = CostModel(platform)
    cost = dataclasses.replace(base, platform=platform)
    if scheduler is not None and dataclasses.is_dataclass(scheduler):
        try:
            return dataclasses.replace(scheduler, cost=cost)
        except (TypeError, ValueError):
            pass
    return LayerBasedScheduler(cost)


def _suffix_graph(graph: TaskGraph, keep) -> TaskGraph:
    sub = TaskGraph(f"{graph.name}:reschedule")
    for t in graph:
        if t in keep:
            sub.add_task(t)
    for u, v, flows in graph.edges():
        if u in keep and v in keep:
            sub.add_dependency(u, v, list(flows))
    return sub


def reschedule_on_core_loss(
    graph: TaskGraph,
    layered: LayeredSchedule,
    trace: ExecutionTrace,
    platform,
    strategy,
    loss: CoreLoss,
    scheduler=None,
    options=None,
    obs: Optional[Instrumentation] = None,
) -> RescheduleOutcome:
    """Re-plan the layers at/after ``loss.after_layer`` on a reduced platform.

    Parameters
    ----------
    graph / layered / trace:
        The original program, its layered schedule and the fault-free (or
        fault-overheads-only) simulated trace; the trace supplies the
        prefix timing.
    platform / strategy:
        The original platform and the mapping strategy to re-map with.
    loss:
        The core-loss event (whole nodes, at a layer boundary).
    scheduler:
        The scheduler to re-invoke (re-bound to the reduced platform);
        defaults to a fresh ``LayerBasedScheduler``.
    options:
        :class:`~repro.sim.executor.SimulationOptions` for the suffix
        simulation.  Pass a fault plan *without* the core loss here to
        keep injected failures/slowdowns active in the suffix.
    """
    from ..pipeline.pipeline import SchedulingPipeline
    from ..sim.executor import SimulationOptions

    obs = obs if obs is not None else Instrumentation()
    machine = trace.machine
    per_node = machine.cores_per_node(0)
    remaining_nodes = machine.num_nodes - loss.nodes
    if remaining_nodes < 1:
        raise ValueError(
            f"core loss removes {loss.nodes} of {machine.num_nodes} nodes; "
            "nothing left to reschedule on"
        )
    reduced = platform.with_cores(remaining_nodes * per_node)
    cut = min(loss.after_layer, layered.num_layers)

    prefix_members = {
        m
        for layer in layered.layers[:cut]
        for t in layer.tasks
        for m in layered.expand(t)
    }
    prefix_entries = [e for e in trace.entries if e.task in prefix_members]
    t0 = max((e.finish for e in prefix_entries), default=0.0)

    if cut >= layered.num_layers:
        # the loss struck after the last layer: nothing to re-plan
        return RescheduleOutcome(
            trace=trace,
            loss=loss,
            cut=cut,
            reduced_platform=reduced,
            prefix_makespan=t0,
            original_layered=layered,
        )

    suffix_graph = _suffix_graph(graph, set(graph) - prefix_members)
    sub_pipeline = SchedulingPipeline(
        _reduced_scheduler(scheduler, reduced),
        strategy=strategy,
        options=options if options is not None else SimulationOptions(),
    )
    suffix = sub_pipeline.run(suffix_graph, obs)
    if suffix.trace is None:
        raise RuntimeError("suffix re-schedule produced no trace")

    shifted = [
        dataclasses.replace(e, start=e.start + t0, finish=e.finish + t0)
        for e in suffix.trace.entries
    ]
    combined = ExecutionTrace(machine, prefix_entries + shifted)
    return RescheduleOutcome(
        trace=combined,
        loss=loss,
        cut=cut,
        reduced_platform=reduced,
        prefix_makespan=t0,
        original_layered=layered,
        suffix=suffix,
    )


def cluster_loss_handler(
    graph: TaskGraph,
    layered: LayeredSchedule,
    trace: ExecutionTrace,
    platform,
    strategy,
    scheduler=None,
    options=None,
    obs: Optional[Instrumentation] = None,
    nodes_per_worker: int = 1,
):
    """Bridge a backend's ``on_worker_lost`` hook to core-loss re-planning.

    Returns a callback suitable for
    :class:`~repro.runtime.backends.ClusterBackend`'s ``on_worker_lost``
    parameter.  Each permanent worker departure is treated as the loss
    of ``nodes_per_worker`` whole nodes at the boundary of the batch
    being executed (a batch of independent tasks *is* a schedule layer,
    so ``WorkerLoss.batch_index`` maps directly onto
    ``CoreLoss.after_layer``), and :func:`reschedule_on_core_loss` is
    invoked with the cumulative loss so far -- the re-plan always
    reflects every departure, not just the latest one.

    The outcomes accumulate on the returned callback's ``outcomes``
    attribute in event order.  Re-planning is advisory for the run that
    suffered the loss (the cluster backend already requeued the work;
    for pure bodies the variables are identical either way) -- the new
    ``group_sizes()`` matter for *subsequent* or resumed runs, so a
    handler failure, including running out of nodes to re-plan on, is
    recorded on ``callback.errors`` rather than raised into (and
    aborting) the surviving run.
    """
    outcomes: list = []
    errors: list = []
    lost_nodes = [0]

    def on_worker_lost(loss) -> None:
        lost_nodes[0] += nodes_per_worker
        event = CoreLoss(after_layer=loss.batch_index, nodes=lost_nodes[0])
        try:
            outcomes.append(
                reschedule_on_core_loss(
                    graph,
                    layered,
                    trace,
                    platform,
                    strategy,
                    event,
                    scheduler=scheduler,
                    options=options,
                    obs=obs,
                )
            )
        except (ValueError, RuntimeError) as exc:
            errors.append((loss, exc))

    on_worker_lost.outcomes = outcomes
    on_worker_lost.errors = errors
    return on_worker_lost
