"""Mapping strategies: orderings of the physical cores (Section 3.4).

The mapping step assigns the symbolic cores of a layer's groups to
physical cores through a *sequence* of physical cores; symbolic core ``i``
(in group order) goes to the ``i``-th sequence element.  The strategies
differ only in how the sequence is built:

* **consecutive** -- node-major order; cores of the same node are adjacent,
  so groups occupy as few nodes as possible (Fig. 9),
* **scattered** -- position-major order; corresponding cores of different
  nodes are adjacent, so groups spread over all nodes (Fig. 10),
* **mixed(d)** -- runs of ``d`` consecutive cores per node, dealt to the
  nodes round-robin (Fig. 11).  ``d = 1`` degenerates to scattered and
  ``d = cores-per-node`` to consecutive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

from ..cluster.architecture import CoreId, Machine

__all__ = [
    "MappingStrategy",
    "consecutive",
    "scattered",
    "mixed",
    "strategy_by_name",
    "standard_strategies",
]


@dataclass(frozen=True)
class MappingStrategy:
    """A named physical-core ordering."""

    name: str
    _sequence: Callable[[Machine], Tuple[CoreId, ...]]

    def sequence(self, machine: Machine) -> Tuple[CoreId, ...]:
        """The full physical core sequence ``pc_1 .. pc_P``."""
        seq = self._sequence(machine)
        if len(seq) != machine.total_cores or len(set(seq)) != len(seq):
            raise AssertionError(
                f"strategy {self.name!r} produced an invalid sequence"
            )
        return seq

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def _consecutive_seq(machine: Machine) -> Tuple[CoreId, ...]:
    return machine.cores()


def _mixed_seq(machine: Machine, d: int) -> Tuple[CoreId, ...]:
    # per-node queues of core blocks of size d, dealt round-robin
    blocks: List[List[CoreId]] = []
    per_node: List[List[List[CoreId]]] = []
    for n in range(machine.num_nodes):
        cores = list(machine.cores_of_node(n))
        node_blocks = [cores[i : i + d] for i in range(0, len(cores), d)]
        per_node.append(node_blocks)
    rounds = max(len(nb) for nb in per_node)
    for r in range(rounds):
        for nb in per_node:
            if r < len(nb):
                blocks.append(nb[r])
    return tuple(c for b in blocks for c in b)


def consecutive() -> MappingStrategy:
    """Consecutive mapping: minimise the nodes per group."""
    return MappingStrategy("consecutive", _consecutive_seq)


def scattered() -> MappingStrategy:
    """Scattered mapping: spread each group over all nodes."""
    return MappingStrategy("scattered", lambda m: _mixed_seq(m, 1))


def mixed(d: int) -> MappingStrategy:
    """Mixed mapping with ``d`` consecutive cores of a node per run."""
    if d < 1:
        raise ValueError("d must be >= 1")
    return MappingStrategy(f"mixed(d={d})", lambda m: _mixed_seq(m, d))


def strategy_by_name(name: str) -> MappingStrategy:
    """Parse ``"consecutive"``, ``"scattered"`` or ``"mixed:<d>"``."""
    low = name.lower()
    if low == "consecutive":
        return consecutive()
    if low == "scattered":
        return scattered()
    if low.startswith("mixed:"):
        return mixed(int(low.split(":", 1)[1]))
    raise ValueError(f"unknown mapping strategy {name!r}")


def standard_strategies(machine: Machine) -> List[MappingStrategy]:
    """Strategies compared in the paper for a given machine: consecutive,
    scattered and the mixed variants with ``d`` a proper divisor of the
    node width (d=2 on the quad-core-node CHiC/Altix, d=2 and d=4 on the
    eight-core-node JuRoPA)."""
    per_node = machine.cores_per_node(0)
    out = [consecutive()]
    d = 2
    while d < per_node:
        out.append(mixed(d))
        d *= 2
    out.append(scattered())
    return out
