"""The mapping function ``F_W``: symbolic groups to physical cores.

For each layer ``W`` with group partition ``{G_1, .., G_g}`` the mapping
function assigns group ``G_i`` the next ``|G_i|`` cores of the strategy's
physical core sequence (Section 3.4):

    ``F_W(G_i) = {pc_j, .., pc_{j+|G_i|-1}}``,  ``j = 1 + sum_{k<i} |G_k|``

This module turns layered schedules (Algorithm 1) and symbolic-core
timelines (CPA/CPR) into :class:`~repro.core.schedule.Placement` objects
the simulator can execute.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..cluster.architecture import CoreId, Machine
from ..core.schedule import Layer, LayeredSchedule, Placement, Schedule
from ..core.task import MTask
from .strategies import MappingStrategy

__all__ = ["map_layer", "place_layered", "place_timeline", "place_result"]


def _reject_result(obj, fn: str) -> None:
    # SchedulingResult is not imported here (layering); detect by name to
    # give migrating callers a targeted error instead of an attribute
    # failure deep inside the mapping arithmetic.
    if type(obj).__name__ == "SchedulingResult":
        raise TypeError(
            f"{fn} expects a raw schedule artefact; you passed a "
            "SchedulingResult -- use place_result(result, machine, strategy), "
            "unwrap result.layered / result.timeline, or run a "
            "repro.pipeline.SchedulingPipeline"
        )


def map_layer(
    layer: Layer, machine: Machine, strategy: MappingStrategy
) -> List[Tuple[CoreId, ...]]:
    """Physical core tuple of every group of one layer."""
    if sum(layer.group_sizes) != machine.total_cores:
        raise ValueError(
            f"layer uses {sum(layer.group_sizes)} symbolic cores but the "
            f"machine has {machine.total_cores}"
        )
    seq = strategy.sequence(machine)
    out: List[Tuple[CoreId, ...]] = []
    offset = 0
    for size in layer.group_sizes:
        out.append(tuple(seq[offset : offset + size]))
        offset += size
    return out


def place_layered(
    schedule: LayeredSchedule,
    machine: Machine,
    strategy: MappingStrategy,
) -> Placement:
    """Map a layered schedule onto the machine.

    Each original task receives the physical cores of its group; tasks of
    the same group keep their serialisation order through monotonically
    increasing priorities, and contracted chains expand into their member
    tasks on the same cores.
    """
    _reject_result(schedule, "place_layered")
    if schedule.nprocs != machine.total_cores:
        raise ValueError(
            f"schedule is for {schedule.nprocs} cores, machine has "
            f"{machine.total_cores}"
        )
    task_cores: Dict[MTask, Tuple[CoreId, ...]] = {}
    priority: Dict[MTask, float] = {}
    counter = 0
    for layer in schedule.layers:
        groups = map_layer(layer, machine, strategy)
        for gi, tasks in enumerate(layer.groups):
            cores = groups[gi]
            for t in tasks:
                for member in schedule.expand(t):
                    width = member.clamp_procs(len(cores))
                    task_cores[member] = cores[:width]
                    priority[member] = float(counter)
                    counter += 1
    return Placement(
        task_cores=task_cores,
        priority=priority,
        all_cores=tuple(strategy.sequence(machine)),
    )


def place_timeline(
    schedule: Schedule,
    machine: Machine,
    strategy: MappingStrategy,
    expansion: Optional[Mapping[MTask, Sequence[MTask]]] = None,
) -> Placement:
    """Map a symbolic-core timeline (e.g. from CPA/CPR).

    Symbolic core ``i`` is backed by the ``i``-th physical core of the
    strategy sequence; priorities follow the scheduled start times.

    When the timeline was computed on a chain-contracted graph,
    ``expansion`` (contracted node -> members in chain order) expands
    each node into its member tasks on the same cores, with fractional
    priority offsets preserving the chain order.
    """
    _reject_result(schedule, "place_timeline")
    if schedule.nprocs != machine.total_cores:
        raise ValueError(
            f"schedule is for {schedule.nprocs} cores, machine has "
            f"{machine.total_cores}"
        )
    seq = strategy.sequence(machine)
    task_cores: Dict[MTask, Tuple[CoreId, ...]] = {}
    priority: Dict[MTask, float] = {}
    for e in schedule.entries:
        cores = tuple(seq[c] for c in e.cores)
        members = list(expansion.get(e.task, [e.task])) if expansion else [e.task]
        for k, member in enumerate(members):
            width = member.clamp_procs(len(cores))
            task_cores[member] = cores[:width]
            priority[member] = e.start + k * 1e-9
    return Placement(task_cores=task_cores, priority=priority, all_cores=tuple(seq))


def place_result(result, machine: Machine, strategy: MappingStrategy) -> Placement:
    """Map a :class:`~repro.scheduling.base.SchedulingResult`.

    Dispatches on the artefact kind: layered schedules go through
    :func:`place_layered`, timelines through :func:`place_timeline` with
    the result's chain-expansion map.
    """
    if result.layered is not None:
        return place_layered(result.layered, machine, strategy)
    if result.timeline is not None:
        return place_timeline(
            result.timeline, machine, strategy, expansion=result.expansion
        )
    raise ValueError(
        f"result of {result.scheduler or 'scheduler'} carries no mappable "
        "schedule (a dynamic-scheduler trace is already placed)"
    )
