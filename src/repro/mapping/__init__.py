"""Architecture-aware mapping of symbolic cores to physical cores."""

from .mapper import map_layer, place_layered, place_result, place_timeline
from .strategies import (
    MappingStrategy,
    consecutive,
    mixed,
    scattered,
    standard_strategies,
    strategy_by_name,
)

__all__ = [
    "MappingStrategy",
    "consecutive",
    "scattered",
    "mixed",
    "strategy_by_name",
    "standard_strategies",
    "map_layer",
    "place_layered",
    "place_timeline",
    "place_result",
]
