"""Shared harness of the per-figure experiment runners.

Every ``fig*.py`` module produces :class:`ExperimentResult` objects --
labelled series over a shared x axis -- which the benchmark suite prints
in the layout of the paper's figures and the tests assert shape
properties on (who wins, by what factor, where the optimum sits).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from ..cluster.platforms import Platform
from ..core.costmodel import CostModel
from ..core.graph import TaskGraph
from ..obs import Instrumentation
from ..mapping.strategies import MappingStrategy
from ..ode.problems import ODEProblem
from ..ode.programs import MethodConfig, step_graph
from ..pipeline import PipelineResult, SchedulingPipeline
from ..scheduling.baselines import data_parallel_scheduler, fixed_group_scheduler
from ..sim.executor import SimulationOptions

__all__ = [
    "Series",
    "ExperimentResult",
    "sequential_step_time",
    "ode_pipeline",
    "simulate_ode_step",
    "paper_group_count",
]


@dataclass
class Series:
    """One labelled curve of an experiment."""

    label: str
    y: List[float]

    def min_index(self) -> int:
        """Index of the smallest y value."""
        return min(range(len(self.y)), key=self.y.__getitem__)


@dataclass
class ExperimentResult:
    """A figure-shaped result: series over a common x axis."""

    title: str
    xlabel: str
    x: List
    series: List[Series] = field(default_factory=list)
    ylabel: str = "time per step [s]"

    def add(self, label: str, y: Sequence[float]) -> None:
        """Append a named series (must match the x grid length)."""
        if len(y) != len(self.x):
            raise ValueError(
                f"series {label!r} has {len(y)} points, x axis has {len(self.x)}"
            )
        self.series.append(Series(label, list(y)))

    def get(self, label: str) -> Series:
        """Look up a series by label."""
        for s in self.series:
            if s.label == label:
                return s
        raise KeyError(
            f"no series {label!r}; have {[s.label for s in self.series]}"
        )

    def best_label_at(self, xi: int, higher_is_better: bool = False) -> str:
        """Label of the best series at x index ``xi`` (lowest y for time
        figures, highest for speedup/rate figures)."""
        pick = max if higher_is_better else min
        return pick(self.series, key=lambda s: s.y[xi]).label

    def to_csv(self) -> str:
        """The figure as CSV: one row per x value, one column per series."""
        header = [self.xlabel] + [s.label for s in self.series]
        rows = [",".join(header)]
        for i, xv in enumerate(self.x):
            rows.append(",".join([str(xv)] + [repr(s.y[i]) for s in self.series]))
        return "\n".join(rows) + "\n"

    def table_str(self, value_format: str = "{:11.4g}") -> str:
        """Render all series as an aligned text table."""
        width = max(12, max((len(s.label) for s in self.series), default=12) + 1)
        header = f"{self.xlabel:>{width}} | " + " | ".join(
            f"{s.label:>11s}" for s in self.series
        )
        lines = [self.title, "-" * len(header), header, "-" * len(header)]
        for i, xv in enumerate(self.x):
            row = f"{str(xv):>{width}} | " + " | ".join(
                value_format.format(s.y[i]) for s in self.series
            )
            lines.append(row)
        lines.append("-" * len(header))
        return "\n".join(lines)


def sequential_step_time(graph: TaskGraph, cost: CostModel) -> float:
    """Sequential execution time of one step (for speedup figures)."""
    return sum(cost.sequential_time(t) for t in graph if not t.meta.get("structural"))


def paper_group_count(cfg: MethodConfig) -> int:
    """Group count of the paper's task-parallel program versions:
    ``R/2`` for the extrapolation method (approximations ``i`` and
    ``R+1-i`` share a group, Fig. 6 middle), ``K`` for the stage-vector
    methods."""
    if cfg.method == "epol":
        return max(1, cfg.K // 2)
    return cfg.K


def ode_pipeline(
    problem: ODEProblem,
    cfg: MethodConfig,
    platform: Platform,
    strategy: MappingStrategy,
    version: str = "tp",
    cost: Optional[CostModel] = None,
    groups: Optional[int] = None,
    options: SimulationOptions = SimulationOptions(),
    obs: Optional[Instrumentation] = None,
) -> PipelineResult:
    """Run one ODE time step through the scheduling pipeline.

    ``version`` is ``"tp"`` (task parallel, paper group counts unless
    ``groups`` given) or ``"dp"`` (data parallel).  Returns the full
    :class:`~repro.pipeline.PipelineResult` with schedule, placement,
    trace and per-stage diagnostics.
    """
    if cost is None:
        cost = CostModel(platform)
    graph = step_graph(problem, cfg)
    if version == "dp":
        scheduler = data_parallel_scheduler(cost)
    elif version == "tp":
        scheduler = fixed_group_scheduler(cost, groups or paper_group_count(cfg))
    else:
        raise ValueError("version must be 'dp' or 'tp'")
    pipe = SchedulingPipeline(scheduler, strategy=strategy, options=options)
    return pipe.run(graph, obs)


def simulate_ode_step(
    problem: ODEProblem,
    cfg: MethodConfig,
    platform: Platform,
    strategy: MappingStrategy,
    version: str = "tp",
    cost: Optional[CostModel] = None,
    groups: Optional[int] = None,
    options: SimulationOptions = SimulationOptions(),
):
    """Schedule, map and simulate one ODE time step.

    Returns the :class:`~repro.sim.trace.ExecutionTrace` (the pipeline's
    simulation-stage output; see :func:`ode_pipeline` for the full
    result).
    """
    return ode_pipeline(
        problem, cfg, platform, strategy, version, cost, groups, options
    ).trace
