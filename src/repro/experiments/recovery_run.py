"""Journaled functional solver runs (the ``--checkpoint-dir`` CLI path).

Shared by ``python -m repro.obs`` and ``python -m repro.experiments``:
one time step of a solver's functional M-task program executes under a
write-ahead :class:`~repro.recovery.RunJournal` backed by a
content-addressed :class:`~repro.recovery.CheckpointStore`.  Killing the
process mid-step leaves a consistent journal; re-running with
``resume=True`` skips the journaled tasks, restores their outputs and
yields a run bit-identical to an uninterrupted one (the determinism the
kill-and-resume chaos job asserts).
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional, Tuple

import numpy as np

from ..faults.plan import FaultPlan
from ..faults.retry import RetryPolicy
from ..ode.problems import ODEProblem
from ..ode.programs import MethodConfig, build_ode_program
from ..recovery import CheckpointStore, RunJournal, SpeculationPolicy, Supervisor
from ..runtime.executor import RunResult, run_program

__all__ = ["run_checkpointed_step"]


def run_checkpointed_step(
    problem: ODEProblem,
    cfg: MethodConfig,
    checkpoint_dir,
    resume: bool = False,
    speculation: Optional[SpeculationPolicy] = None,
    supervisor: Optional[Supervisor] = None,
    faults: Optional[FaultPlan] = None,
    retry: Optional[RetryPolicy] = None,
    crash_after: Optional[int] = None,
    backend=None,
    obs=None,
) -> Tuple[RunResult, Dict[str, Any]]:
    """Run one functional time step under a write-ahead journal.

    The program's upper (initialisation) graph runs journal-free to
    produce the step's live-in variables -- it is deterministic, so both
    the original and the resumed process reconstruct the same input
    store, which the journal header digests verify.  Returns the step's
    :class:`~repro.runtime.RunResult` and a flat summary dict (tasks
    executed/resumed, checkpoint bytes, speculation wins/losses) for CLI
    reporting.  ``crash_after`` forwards the journal's deterministic
    kill switch to chaos tests.  ``backend`` selects the
    :class:`~repro.runtime.backends.ExecutionBackend` of the journaled
    step (the init graph always runs serially); ``obs`` threads an
    :class:`~repro.obs.Instrumentation` through it so per-worker spans
    reach the trace exporter.
    """
    build = build_ode_program(problem, cfg, functional=True)
    composed = build.composed_nodes()
    if len(composed) != 1:
        raise ValueError("expected exactly one time-stepping loop")
    loop = composed[0]
    body = build.body_of(loop)
    params = {p.name for p in loop.params}
    sol = next((c for c in ("eta", "eta_k", "y") if c in params), "eta")
    inputs: Dict[str, np.ndarray] = {sol: problem.y0}
    for p in loop.params:
        if p.mode.reads and p.name not in inputs:
            inputs[p.name] = np.zeros(p.elements)
    store = dict(run_program(build.graph, inputs).variables)

    root = Path(checkpoint_dir)
    journal = RunJournal(
        root / "journal.jsonl", store=CheckpointStore(root), crash_after=crash_after
    )
    run = run_program(
        body,
        store,
        journal=journal,
        resume=resume,
        speculation=speculation,
        supervisor=supervisor,
        faults=faults,
        retry=retry,
        backend=backend,
        obs=obs,
    )
    summary: Dict[str, Any] = {
        "tasks_executed": run.stats.tasks_executed,
        "resumed_tasks": run.stats.resumed_tasks,
        "checkpoint_bytes": run.stats.checkpoint_bytes,
        "speculation_wins": sum(1 for s in run.stats.speculations if s.win),
        "speculation_losses": sum(1 for s in run.stats.speculations if not s.win),
    }
    if backend is not None:
        summary["backend"] = backend.name
    if run.stats.cancel_reason:
        summary["cancelled"] = run.stats.cancel_reason
    return run, summary
