"""Figure 14: mapping impact on MPI_Allgather (Section 4.4).

Left: a *global* multi-broadcast over 256 CHiC cores.  The rank order of
the operation is the mapping strategy's physical core sequence, so a
consecutive mapping keeps the ring algorithm's neighbour transfers inside
the nodes while a scattered mapping pushes every transfer through the
network with NIC contention.

Right: the Intel MPI *Multi-Allgather* benchmark -- concurrent
multi-broadcasts in equal-sized core subsets.  The 4-groups case (64
cores each) corresponds to the group-based communication of a 4-stage
ODE solver; the 64-groups case (4 cores each, one per solver group)
corresponds to the orthogonal communication.  Groups are formed in rank
space and placed through the mapping, exactly like the solver's groups.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..cluster.platforms import Platform, chic
from ..comm.collectives import multi_group_time
from ..comm.patterns import orthogonal_sets
from ..mapping.strategies import MappingStrategy, consecutive, mixed, scattered
from .common import ExperimentResult

__all__ = [
    "DEFAULT_SIZES",
    "global_allgather",
    "multi_allgather",
    "run_fig14_left",
    "run_fig14_right",
]

#: per-core payload sizes in bytes (the benchmark's x axis)
DEFAULT_SIZES = [1 << k for k in range(10, 24, 2)]  # 1 KiB .. 8 MiB


def _strategies(platform: Platform) -> List[MappingStrategy]:
    return [consecutive(), mixed(2), scattered()]


def global_allgather(
    platform: Platform, strategy: MappingStrategy, per_core_bytes: float
) -> float:
    """Time of one global ``MPI_Allgather`` under a mapping strategy."""
    seq = list(strategy.sequence(platform.machine))
    total = per_core_bytes * len(seq)
    return multi_group_time(
        "allgather", platform.machine, platform.network, [seq], total
    )


def multi_allgather(
    platform: Platform,
    strategy: MappingStrategy,
    num_solver_groups: int,
    per_core_bytes: float,
    orthogonal: bool,
) -> float:
    """Concurrent allgathers in solver-style groups (Fig. 14 right).

    ``orthogonal=False`` measures the group-based pattern (one allgather
    per solver group); ``orthogonal=True`` the orthogonal pattern (one
    allgather per rank position across the groups).
    """
    seq = list(strategy.sequence(platform.machine))
    P = len(seq)
    if P % num_solver_groups:
        raise ValueError("group count must divide the core count")
    size = P // num_solver_groups
    groups = [seq[i * size : (i + 1) * size] for i in range(num_solver_groups)]
    comm_sets: Sequence[Sequence] = (
        orthogonal_sets(groups) if orthogonal else groups
    )
    total = per_core_bytes * len(comm_sets[0])
    return multi_group_time(
        "allgather", platform.machine, platform.network, comm_sets, total
    )


def run_fig14_left(
    platform: Optional[Platform] = None,
    sizes: Optional[List[int]] = None,
) -> ExperimentResult:
    """Global allgather on 256 CHiC cores vs message size per mapping."""
    platform = platform or chic().with_cores(256)
    sizes = sizes or DEFAULT_SIZES
    result = ExperimentResult(
        title=f"Fig 14 (left): MPI_Allgather on {platform.total_cores} cores of {platform.name}",
        xlabel="bytes/core",
        x=list(sizes),
        ylabel="time [s]",
    )
    for strat in _strategies(platform):
        result.add(strat.name, [global_allgather(platform, strat, s) for s in sizes])
    return result


def run_fig14_right(
    platform: Optional[Platform] = None,
    sizes: Optional[List[int]] = None,
    num_solver_groups: int = 4,
) -> List[ExperimentResult]:
    """Multi-Allgather with 4 x 64-core groups and 64 x 4-core orthogonal
    sets on 256 CHiC cores."""
    platform = platform or chic().with_cores(256)
    sizes = sizes or DEFAULT_SIZES
    out: List[ExperimentResult] = []
    for orthogonal, label in ((False, "group-based"), (True, "orthogonal")):
        groups = (
            platform.total_cores // num_solver_groups
            if orthogonal
            else num_solver_groups
        )
        res = ExperimentResult(
            title=(
                f"Fig 14 (right, {label}): Multi-Allgather, {groups} groups "
                f"on {platform.total_cores} cores of {platform.name}"
            ),
            xlabel="bytes/core",
            x=list(sizes),
            ylabel="time [s]",
        )
        for strat in _strategies(platform):
            res.add(
                strat.name,
                [
                    multi_allgather(platform, strat, num_solver_groups, s, orthogonal)
                    for s in sizes
                ],
            )
        out.append(res)
    return out
