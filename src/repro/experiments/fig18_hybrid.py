"""Figure 18: pure MPI vs hybrid MPI+OpenMP on the CHiC cluster.

Left (IRK, K=4): the hybrid execution scheme lifts the *data parallel*
version considerably -- its global collectives shrink from one rank per
core to one per node -- and also helps the task parallel version.

Right (DIIRK, K=4): the hybrid scheme *slows down* the data parallel
version: its distributed eliminations synchronise extremely often, and
each synchronisation now pays the two-level (OpenMP + funneled-MPI)
barrier.  The task parallel version, whose eliminations run concurrently
inside the groups, still gains.

Both panels use the consecutive mapping (thread teams must share a
node).
"""

from __future__ import annotations

from typing import List, Sequence

from ..cluster.platforms import chic
from ..hybrid.model import HybridCostModel
from ..mapping.strategies import consecutive
from ..ode.problems import bruss2d
from ..ode.programs import MethodConfig
from .common import ExperimentResult, simulate_ode_step

__all__ = ["run_hybrid_panel", "run_fig18"]


def run_hybrid_panel(
    method: str,
    cores: Sequence[int] = (64, 128, 256, 512),
    N: int = 500,
    threads: int = 4,
) -> ExperimentResult:
    """One Fig. 18 panel: {dp, tp} x {pure MPI, hybrid} time per step."""
    problem = bruss2d(N)
    if method == "irk":
        cfg = MethodConfig("irk", K=4, m=7)
    elif method == "diirk":
        cfg = MethodConfig("diirk", K=4, m=3, I=2)
    else:
        raise ValueError("method must be 'irk' or 'diirk'")
    base = chic()
    result = ExperimentResult(
        title=f"Fig 18: {method.upper()} K=4 pure MPI vs hybrid (h={threads}), BRUSS2D, CHiC",
        xlabel="cores",
        x=list(cores),
    )
    strat = consecutive()
    for version in ("dp", "tp"):
        for hybrid in (False, True):
            ys = []
            for p in cores:
                plat = base.with_cores(p)
                cost = HybridCostModel(
                    plat, threads_per_process=threads if hybrid else 1
                )
                tr = simulate_ode_step(problem, cfg, plat, strat, version, cost=cost)
                ys.append(tr.makespan)
            label = f"{version}/{'hybrid' if hybrid else 'pure MPI'}"
            result.add(label, ys)
    return result


def run_fig18(quick: bool = False) -> List[ExperimentResult]:
    """Run the Fig. 18 hybrid MPI+OpenMP sweep."""
    cores = (64, 256) if quick else (64, 128, 256, 512)
    N = 180 if quick else 500
    return [
        run_hybrid_panel("irk", cores, N),
        run_hybrid_panel("diirk", cores, N),
    ]
