"""Shared runner of the ODE mapping figures (Figs. 15 and 16).

Each panel of the paper's Figs. 15/16 sweeps the core count for one
(method, platform, ODE system) combination and compares the mapping
strategies of the task-parallel program version, usually with the data
parallel version as an extra curve.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from ..cluster.platforms import Platform
from ..core.costmodel import CostModel
from ..mapping.strategies import MappingStrategy, consecutive, mixed, scattered
from ..ode.problems import ODEProblem
from ..ode.programs import MethodConfig, step_graph
from .common import ExperimentResult, sequential_step_time, simulate_ode_step

__all__ = ["mapping_sweep", "speedup_sweep"]


def platform_strategies(platform: Platform) -> List[MappingStrategy]:
    """The strategies the paper compares on a platform (node-width
    dependent: d=2 on quad-core nodes, plus d=4 on eight-core nodes)."""
    per_node = platform.machine.cores_per_node(0)
    out: List[MappingStrategy] = [consecutive()]
    d = per_node // 2
    while d >= 2:
        out.append(mixed(d))
        d //= 2
    out.append(scattered())
    return out


def mapping_sweep(
    problem: ODEProblem,
    cfg: MethodConfig,
    platform_factory: Callable[[], Platform],
    core_counts: Sequence[int],
    include_dp: bool = True,
    strategies: Optional[Sequence[MappingStrategy]] = None,
    title: str = "",
) -> ExperimentResult:
    """Time per step vs core count, one series per mapping strategy."""
    base = platform_factory()
    strategies = list(strategies or platform_strategies(base))
    result = ExperimentResult(
        title=title or f"{cfg.method.upper()} on {base.name}, {problem.name}",
        xlabel="cores",
        x=list(core_counts),
    )
    for strat in strategies:
        ys = []
        for p in core_counts:
            plat = base.with_cores(p)
            ys.append(simulate_ode_step(problem, cfg, plat, strat, "tp").makespan)
        result.add(strat.name, ys)
    if include_dp:
        ys = []
        for p in core_counts:
            plat = base.with_cores(p)
            ys.append(
                simulate_ode_step(problem, cfg, plat, consecutive(), "dp").makespan
            )
        result.add("data-parallel", ys)
    return result


def speedup_sweep(
    problem: ODEProblem,
    cfg: MethodConfig,
    platform_factory: Callable[[], Platform],
    core_counts: Sequence[int],
    strategies: Optional[Sequence[MappingStrategy]] = None,
    include_dp: bool = True,
    title: str = "",
) -> ExperimentResult:
    """Speedup over the sequential execution (Fig. 16 bottom-left style)."""
    base = platform_factory()
    strategies = list(strategies or platform_strategies(base))
    result = ExperimentResult(
        title=title or f"{cfg.method.upper()} speedups on {base.name}, {problem.name}",
        xlabel="cores",
        x=list(core_counts),
        ylabel="speedup",
    )
    graph_cost = CostModel(base)
    t_seq = sequential_step_time(step_graph(problem, cfg), graph_cost)
    series: List[Tuple[str, List[float]]] = []
    for strat in strategies:
        ys = []
        for p in core_counts:
            plat = base.with_cores(p)
            t = simulate_ode_step(problem, cfg, plat, strat, "tp").makespan
            ys.append(t_seq / t)
        result.add(strat.name, ys)
    if include_dp:
        ys = []
        for p in core_counts:
            plat = base.with_cores(p)
            t = simulate_ode_step(problem, cfg, plat, consecutive(), "dp").makespan
            ys.append(t_seq / t)
        result.add("data-parallel", ys)
    return result
