"""Table 1: regenerate the collective-operation counts per time step.

For every solver the runner builds the M-task step graph, derives the
data-parallel counts directly and the task-parallel counts through the
layer-based scheduler pinned to the paper's group numbers, and prints
the table next to the closed-form entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..cluster.platforms import chic
from ..core.costmodel import CostModel
from ..ode.comm_counts import (
    StepCommCounts,
    counts_from_step_graph,
    table1_expected,
)
from ..ode.problems import ODEProblem, schroed
from ..ode.programs import MethodConfig, step_graph
from ..scheduling.baselines import fixed_group_scheduler
from .common import paper_group_count

__all__ = ["Table1Row", "run_table1", "format_table1"]

#: the method configurations Table 1 is stated for
TABLE1_CONFIGS: List[MethodConfig] = [
    MethodConfig("epol", K=8),
    MethodConfig("irk", K=4, m=7),
    MethodConfig("diirk", K=4, m=3, I=2),
    MethodConfig("pab", K=8),
    MethodConfig("pabm", K=8, m=2),
]


@dataclass(frozen=True)
class Table1Row:
    """One method/version row of Table 1."""
    method: str
    version: str
    measured: StepCommCounts
    expected: StepCommCounts

    @property
    def matches(self) -> bool:
        return self.measured == self.expected


def run_table1(
    problem: ODEProblem = None, cores: int = 64
) -> List[Table1Row]:
    """Measured vs closed-form Table 1 entries for all ten rows.

    Uses a dense problem by default: the printed DIIRK broadcast counts
    describe the dense distributed Gaussian elimination (our sparse
    programs use the banded variant instead, see
    ``repro.ode.programs``).
    """
    if problem is None:
        problem = schroed(256)
    cost = CostModel(chic().with_cores(cores))
    rows: List[Table1Row] = []
    for cfg in TABLE1_CONFIGS:
        graph = step_graph(problem, cfg)
        dp = counts_from_step_graph(graph, groups=1)
        rows.append(
            Table1Row(cfg.method, "dp", dp, table1_expected(cfg, problem.n, "dp"))
        )
        result = fixed_group_scheduler(cost, paper_group_count(cfg)).schedule(graph)
        tp = counts_from_step_graph(graph, schedule=result.layered)
        rows.append(
            Table1Row(cfg.method, "tp", tp, table1_expected(cfg, problem.n, "tp"))
        )
    return rows


def _fmt(ops: Dict[str, float]) -> str:
    if not ops:
        return "-"
    return " + ".join(f"{v:g}*{k}" for k, v in sorted(ops.items()))


def format_table1(rows: List[Table1Row]) -> str:
    """Render Table 1 rows as aligned text."""
    lines = [
        "Table 1: collective operations per ODE time step",
        f"{'benchmark':>12s} | {'global':>28s} | {'group-based':>22s} | "
        f"{'orthogonal':>14s} | match",
    ]
    lines.insert(1, "-" * len(lines[1]))
    lines.append("-" * len(lines[1]))
    for r in rows:
        m = r.measured
        lines.append(
            f"{r.method.upper() + '(' + r.version + ')':>12s} | "
            f"{_fmt(m.global_ops):>28s} | {_fmt(m.group_ops):>22s} | "
            f"{_fmt(m.orthogonal_ops):>14s} | {'OK' if r.matches else 'MISMATCH'}"
        )
    return "\n".join(lines)
