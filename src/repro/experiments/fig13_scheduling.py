"""Figure 13: layer-based scheduling vs CPA vs CPR (Section 4.3).

Left: PABM with K=8 stage vectors on the CHiC cluster -- speedups of the
four scheduling decisions (task parallel = layer-based algorithm, CPA,
CPR, data parallel).  CPA over-allocates the independent stage chains,
serialising them; CPR converges to the same schedule as the layer-based
algorithm.

Right: EPOL with R=8 approximations -- time per step.  CPA finds a good
mixed schedule; CPR pours cores into the longest micro-step chain,
producing an almost data-parallel schedule whose extra re-distributions
make it *worse* than plain data parallelism.

All schedulers run on the chain-contracted step graph (the layer-based
algorithm contracts internally; handing CPA/CPR the same contracted
graph keeps the comparison about allocation policy, not chain handling).
"""

from __future__ import annotations

from typing import List, Sequence

from ..cluster.platforms import Platform, chic
from ..core.costmodel import CostModel
from ..mapping.strategies import MappingStrategy, consecutive
from ..ode.problems import ODEProblem, bruss2d
from ..ode.programs import MethodConfig, step_graph
from ..pipeline import SchedulingPipeline
from ..scheduling.base import Scheduler
from ..scheduling.baselines import data_parallel_scheduler, fixed_group_scheduler
from ..scheduling.cpa import CPAScheduler
from ..scheduling.cpr import CPRScheduler
from ..scheduling.mcpa import MCPAScheduler
from .common import ExperimentResult, paper_group_count, sequential_step_time

__all__ = ["SCHEDULERS", "make_scheduler", "schedule_and_simulate", "run_pabm_speedups", "run_epol_times", "run_fig13"]

#: the four scheduling decisions the paper compares; ``"MCPA"`` (the
#: allocation-bounded CPA variant of reference [4]) is additionally
#: accepted by :func:`schedule_and_simulate` as an extension
SCHEDULERS = ("task parallel", "CPA", "CPR", "data parallel")


def make_scheduler(name: str, cost: CostModel, cfg: MethodConfig) -> Scheduler:
    """Scheduler instance behind one of Fig. 13's scheduling decisions.

    CPA/CPR/MCPA do not handle linear chains themselves; the pipeline's
    contraction stage hands them the chain-contracted step graph, which
    keeps the comparison about allocation policy, not chain handling.
    """
    if name == "task parallel":
        return fixed_group_scheduler(cost, paper_group_count(cfg))
    if name == "data parallel":
        return data_parallel_scheduler(cost)
    gran = max(1, cost.platform.total_cores // 128)
    if name == "CPA":
        return CPAScheduler(cost, granularity=gran)
    if name == "MCPA":
        return MCPAScheduler(cost, granularity=gran)
    if name == "CPR":
        return CPRScheduler(cost, granularity=gran)
    raise ValueError(f"unknown scheduler {name!r}")


def schedule_and_simulate(
    problem: ODEProblem,
    cfg: MethodConfig,
    platform: Platform,
    scheduler: str,
    strategy: MappingStrategy = consecutive(),
) -> float:
    """Time per step under one of the four scheduling decisions."""
    cost = CostModel(platform)
    graph = step_graph(problem, cfg)
    pipe = SchedulingPipeline(make_scheduler(scheduler, cost, cfg), strategy=strategy)
    return pipe.run(graph).makespan


def run_pabm_speedups(
    cores: Sequence[int] = (64, 128, 256, 512, 1024),
    N: int = 500,
    schedulers: Sequence[str] = SCHEDULERS,
) -> ExperimentResult:
    """Fig 13 left: PABM K=8 speedups per scheduler on CHiC."""
    problem = bruss2d(N)
    cfg = MethodConfig("pabm", K=8, m=2)
    base = chic()
    result = ExperimentResult(
        title="Fig 13 (left): PABM K=8 speedups by scheduler, BRUSS2D, CHiC",
        xlabel="cores",
        x=list(cores),
        ylabel="speedup",
    )
    t_seq = sequential_step_time(step_graph(problem, cfg), CostModel(base))
    for name in schedulers:
        ys = []
        for p in cores:
            plat = base.with_cores(p)
            ys.append(t_seq / schedule_and_simulate(problem, cfg, plat, name))
        result.add(name, ys)
    return result


def run_epol_times(
    cores: Sequence[int] = (64, 128, 256, 512),
    N: int = 500,
    schedulers: Sequence[str] = SCHEDULERS,
) -> ExperimentResult:
    """Fig 13 right: EPOL R=8 time per step per scheduler on CHiC."""
    problem = bruss2d(N)
    cfg = MethodConfig("epol", K=8)
    base = chic()
    result = ExperimentResult(
        title="Fig 13 (right): EPOL R=8 time/step by scheduler, BRUSS2D, CHiC",
        xlabel="cores",
        x=list(cores),
    )
    for name in schedulers:
        ys = []
        for p in cores:
            plat = base.with_cores(p)
            ys.append(schedule_and_simulate(problem, cfg, plat, name))
        result.add(name, ys)
    return result


def run_fig13(quick: bool = False) -> List[ExperimentResult]:
    """Run the Fig. 13 scheduling-algorithm comparison."""
    if quick:
        return [
            run_pabm_speedups(cores=(64, 256), N=180),
            run_epol_times(cores=(64, 256), N=180),
        ]
    return [run_pabm_speedups(), run_epol_times()]
