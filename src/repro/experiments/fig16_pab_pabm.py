"""Figure 16: mapping strategies for the PAB and PABM solvers.

Panels (Section 4.5):

* top left  -- PAB, K=8, BRUSS2D, CHiC (mixed d=2 wins);
* top right -- PAB, K=8, BRUSS2D, JuRoPA (mixed d=4 wins);
* bottom left -- PABM, K=8, dense SCHROED system, CHiC: *speedups*;
  the data-parallel version stops scaling around 512 cores while the
  consecutive task-parallel version keeps climbing;
* bottom right -- PABM, K=8, sparse BRUSS2D, JuRoPA: runtimes; every
  task-parallel mapping beats data parallelism, consecutive in front.
"""

from __future__ import annotations

from typing import List

from ..cluster.platforms import chic, juropa
from ..ode.problems import bruss2d, schroed
from ..ode.programs import MethodConfig
from .common import ExperimentResult
from .ode_figures import mapping_sweep, speedup_sweep

__all__ = [
    "run_pab_chic",
    "run_pab_juropa",
    "run_pabm_dense_chic",
    "run_pabm_sparse_juropa",
    "run_fig16",
]

DEFAULT_N_GRID = 500
DEFAULT_DENSE_N = 4000


def run_pab_chic(cores=(64, 128, 256, 512), N: int = DEFAULT_N_GRID) -> ExperimentResult:
    """PAB sparse Brusselator sweep on the CHiC platform."""
    return mapping_sweep(
        bruss2d(N),
        MethodConfig("pab", K=8),
        chic,
        cores,
        title="Fig 16 (top left): PAB K=8, BRUSS2D, CHiC",
    )


def run_pab_juropa(cores=(64, 128, 256, 512), N: int = DEFAULT_N_GRID) -> ExperimentResult:
    """PAB sparse Brusselator sweep on the JUROPA platform."""
    return mapping_sweep(
        bruss2d(N),
        MethodConfig("pab", K=8),
        juropa,
        cores,
        title="Fig 16 (top right): PAB K=8, BRUSS2D, JuRoPA",
    )


def run_pabm_dense_chic(
    cores=(64, 128, 256, 512, 1024), n: int = DEFAULT_DENSE_N
) -> ExperimentResult:
    """PABM dense-ODE sweep on the CHiC platform."""
    return speedup_sweep(
        schroed(n),
        MethodConfig("pabm", K=8, m=2),
        chic,
        cores,
        title="Fig 16 (bottom left): PABM K=8 speedups, SCHROED (dense), CHiC",
    )


def run_pabm_sparse_juropa(
    cores=(64, 128, 256, 512), N: int = DEFAULT_N_GRID
) -> ExperimentResult:
    """PABM sparse Brusselator sweep on the JUROPA platform."""
    return mapping_sweep(
        bruss2d(N),
        MethodConfig("pabm", K=8, m=2),
        juropa,
        cores,
        title="Fig 16 (bottom right): PABM K=8, BRUSS2D (sparse), JuRoPA",
    )


def run_fig16(quick: bool = False) -> List[ExperimentResult]:
    """Run all four Fig. 16 panels."""
    N = 180 if quick else DEFAULT_N_GRID
    n_dense = 1500 if quick else DEFAULT_DENSE_N
    cores = (64, 256) if quick else (64, 128, 256, 512)
    dense_cores = (64, 256, 512) if quick else (64, 128, 256, 512, 1024)
    return [
        run_pab_chic(cores, N),
        run_pab_juropa(cores, N),
        run_pabm_dense_chic(dense_cores, n_dense),
        run_pabm_sparse_juropa(cores, N),
    ]
