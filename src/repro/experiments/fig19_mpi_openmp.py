"""Figure 19: MPI-process / OpenMP-thread combinations on the SGI Altix.

The Altix is a distributed-shared-memory machine, so OpenMP teams may
span nodes and every split of 256 cores into ``procs x threads`` is
admissible.  For PABM with K=8 stages:

* the **data parallel** version is fastest with few processes and many
  threads (global collectives all but disappear; the NUMA-penalised team
  barriers are paid rarely),
* the **task parallel** version needs at least K = 8 processes (one per
  stage group) and is fastest at one process per node (h = node width):
  threads stay node-local while the group collectives shrink.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..cluster.platforms import sgi_altix
from ..hybrid.model import HybridCostModel
from ..mapping.strategies import consecutive
from ..ode.problems import schroed
from ..ode.programs import MethodConfig
from .common import ExperimentResult, simulate_ode_step

__all__ = ["run_fig19"]


def run_fig19(
    cores: int = 256,
    n_dense: int = 8000,
    combos: Optional[Sequence[Tuple[int, int]]] = None,
    quick: bool = False,
) -> ExperimentResult:
    """PABM K=8 on 256 Altix cores over MPI x OpenMP splits."""
    if quick:
        cores, n_dense = 128, 1500
    problem = schroed(n_dense)
    cfg = MethodConfig("pabm", K=8, m=2)
    plat = sgi_altix().with_cores(cores)
    if combos is None:
        combos = []
        procs = 1
        while procs <= cores:
            combos.append((procs, cores // procs))
            procs *= 2
    result = ExperimentResult(
        title=f"Fig 19: PABM K=8 on {cores} Altix cores, SCHROED (dense)",
        xlabel="MPI procs x OpenMP threads",
        x=[f"{p}x{h}" for p, h in combos],
    )
    strat = consecutive()
    dp, tp = [], []
    for procs, h in combos:
        cost = HybridCostModel(plat, threads_per_process=h)
        dp.append(simulate_ode_step(problem, cfg, plat, strat, "dp", cost=cost).makespan)
        if procs >= cfg.K:
            tp.append(
                simulate_ode_step(problem, cfg, plat, strat, "tp", cost=cost).makespan
            )
        else:
            tp.append(float("nan"))  # fewer processes than stage groups
    result.add("data-parallel", dp)
    result.add("task-parallel", tp)
    return result
