"""Figure 15: mapping strategies for the IRK, DIIRK and EPOL solvers.

Panels (Section 4.5):

* top left  -- IRK, K=4 stages, BRUSS2D, CHiC;
* top right -- IRK, K=4 stages, BRUSS2D, JuRoPA (adds mixed d=4);
* bottom left -- DIIRK, K=4, BRUSS2D, 512 CHiC cores (dp vs tp mappings);
* bottom right -- EPOL, R=8, BRUSS2D, 512 JuRoPA cores.

Expected shapes: the consecutive mapping wins everywhere; scattered is
clearly outperformed; the DIIRK task-parallel version beats data
parallelism by a wide margin (group-restricted pivot broadcasts).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..cluster.platforms import chic, juropa
from ..mapping.strategies import consecutive, mixed, scattered
from ..ode.problems import bruss2d
from ..ode.programs import MethodConfig
from .common import ExperimentResult, simulate_ode_step
from .ode_figures import mapping_sweep

__all__ = ["run_irk_chic", "run_irk_juropa", "run_diirk_chic", "run_epol_juropa", "run_fig15"]

DEFAULT_N_GRID = 500  # BRUSS2D N -> n = 2 N^2 = 500k


def run_irk_chic(cores=(64, 128, 256, 512), N: int = DEFAULT_N_GRID) -> ExperimentResult:
    """IRK sparse Brusselator sweep on the CHiC platform."""
    return mapping_sweep(
        bruss2d(N),
        MethodConfig("irk", K=4, m=7),
        chic,
        cores,
        title="Fig 15 (top left): IRK K=4, BRUSS2D, CHiC",
    )


def run_irk_juropa(cores=(64, 128, 256, 512), N: int = DEFAULT_N_GRID) -> ExperimentResult:
    """IRK sparse Brusselator sweep on the JUROPA platform."""
    return mapping_sweep(
        bruss2d(N),
        MethodConfig("irk", K=4, m=7),
        juropa,
        cores,
        title="Fig 15 (top right): IRK K=4, BRUSS2D, JuRoPA",
    )


def run_diirk_chic(cores: int = 512, N: int = DEFAULT_N_GRID) -> ExperimentResult:
    """DIIRK at a fixed core count: bars per mapping + data parallel."""
    problem = bruss2d(N)
    cfg = MethodConfig("diirk", K=4, m=3, I=2)
    plat = chic().with_cores(cores)
    result = ExperimentResult(
        title=f"Fig 15 (bottom left): DIIRK K=4, BRUSS2D, {cores} CHiC cores",
        xlabel="variant",
        x=["time"],
    )
    for strat in (consecutive(), mixed(2), scattered()):
        t = simulate_ode_step(problem, cfg, plat, strat, "tp").makespan
        result.add(f"tp/{strat.name}", [t])
    t = simulate_ode_step(problem, cfg, plat, consecutive(), "dp").makespan
    result.add("data-parallel", [t])
    return result


def run_epol_juropa(cores: int = 512, N: int = DEFAULT_N_GRID) -> ExperimentResult:
    """EPOL R=8 at 512 JuRoPA cores: consecutive vs mixed(4) vs others."""
    problem = bruss2d(N)
    cfg = MethodConfig("epol", K=8)
    plat = juropa().with_cores(cores)
    result = ExperimentResult(
        title=f"Fig 15 (bottom right): EPOL R=8, BRUSS2D, {cores} JuRoPA cores",
        xlabel="variant",
        x=["time"],
    )
    for strat in (consecutive(), mixed(4), mixed(2), scattered()):
        t = simulate_ode_step(problem, cfg, plat, strat, "tp").makespan
        result.add(f"tp/{strat.name}", [t])
    t = simulate_ode_step(problem, cfg, plat, consecutive(), "dp").makespan
    result.add("data-parallel", [t])
    return result


def run_fig15(quick: bool = False) -> List[ExperimentResult]:
    """Run all Fig. 15 solver/platform panels."""
    N = 180 if quick else DEFAULT_N_GRID
    cores = (64, 256) if quick else (64, 128, 256, 512)
    fixed = 256 if quick else 512
    return [
        run_irk_chic(cores, N),
        run_irk_juropa(cores, N),
        run_diirk_chic(fixed, N),
        run_epol_juropa(fixed, N),
    ]
