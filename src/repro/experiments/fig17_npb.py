"""Figure 17: NPB multi-zone benchmarks vs group count and mapping.

For SP-MZ and BT-MZ (classes C and D) the number ``g`` of disjoint core
groups is swept while the mapping strategy varies.  Expected shapes
(Section 4.6):

* very small ``g`` loses -- every zone runs on a huge group whose
  intra-zone ADI transposes dominate;
* the maximum ``g`` (one group per zone) is not optimal either: the
  border exchanges couple all groups, and for BT-MZ the graded zone
  sizes leave groups idle (load imbalance);
* the optimum sits at a medium group count and the *scattered* mapping
  outperforms the others (border exchanges are orthogonal-pattern
  communication).

Performance is reported as total Gflop/s of the simulated time step.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..cluster.platforms import Platform, chic, sgi_altix
from ..core.costmodel import CostModel
from ..mapping.strategies import MappingStrategy, consecutive, mixed, scattered
from ..npb.programs import NPBConfig, build_npb_step_graph
from ..pipeline import SchedulingPipeline
from ..scheduling.baselines import fixed_group_scheduler
from .common import ExperimentResult

__all__ = ["npb_rate", "run_npb_sweep", "run_fig17"]


def npb_rate(
    cfg: NPBConfig,
    platform: Platform,
    groups: int,
    strategy: MappingStrategy,
    adjust: bool = True,
) -> float:
    """Simulated Gflop/s of one time step."""
    cost = CostModel(platform)
    graph, grid = build_npb_step_graph(cfg)
    scheduler = fixed_group_scheduler(cost, groups, adjust=adjust)
    pipe = SchedulingPipeline(scheduler, strategy=strategy)
    trace = pipe.run(graph).trace
    total_flops = sum(t.work for t in graph)
    return total_flops / trace.makespan / 1e9


def run_npb_sweep(
    benchmark: str = "SP",
    cls: str = "C",
    platform: Optional[Platform] = None,
    group_counts: Optional[Sequence[int]] = None,
    strategies: Optional[Sequence[MappingStrategy]] = None,
    adjust: bool = True,
) -> ExperimentResult:
    """One panel of Fig. 17."""
    platform = platform or chic().with_cores(256)
    cfg = NPBConfig(benchmark=benchmark, cls=cls)
    _, grid = build_npb_step_graph(cfg)
    if group_counts is None:
        group_counts = []
        g = 4
        while g <= min(grid.num_zones, platform.total_cores):
            group_counts.append(g)
            g *= 2
    strategies = list(strategies or (consecutive(), mixed(2), scattered()))
    result = ExperimentResult(
        title=(
            f"Fig 17: {grid.name} on {platform.total_cores} cores of "
            f"{platform.name} ({grid.num_zones} zones)"
        ),
        xlabel="groups",
        x=list(group_counts),
        ylabel="Gflop/s",
    )
    for strat in strategies:
        result.add(
            strat.name,
            [npb_rate(cfg, platform, g, strat, adjust) for g in group_counts],
        )
    return result


def run_fig17(quick: bool = False) -> List[ExperimentResult]:
    """All four panels: SP-MZ / BT-MZ on CHiC and SGI Altix."""
    if quick:
        chic_plat = chic().with_cores(128)
        altix_plat = sgi_altix().with_cores(128)
        cls_chic = cls_altix = "B"
    else:
        chic_plat = chic().with_cores(256)
        altix_plat = sgi_altix().with_cores(256)
        cls_chic, cls_altix = "C", "C"
    return [
        run_npb_sweep("SP", cls_chic, chic_plat),
        run_npb_sweep("SP", cls_altix, altix_plat),
        run_npb_sweep("BT", cls_chic, chic_plat),
        run_npb_sweep("BT", cls_altix, altix_plat),
    ]
