"""Fault-injection sweep: degraded makespans across the paper solvers.

Not a figure of the paper -- the paper assumes a failure-free platform.
This artefact quantifies what the fault-tolerance subsystem costs: for a
``SEED:RATE[:LAYER:NODES]`` spec (see
:func:`~repro.faults.parse_faults_spec`) every solver's time step is
scheduled and simulated twice, fault-free and under the plan, and the
sweep reports both makespans, their ratio and the injected retry count.
Runs are deterministic: the same spec yields the same table.
"""

from __future__ import annotations

from typing import List, Tuple

from ..cluster.platforms import chic
from ..faults import parse_faults_spec
from ..mapping.strategies import consecutive
from ..ode import MethodConfig, bruss2d
from ..sim.executor import SimulationOptions
from .common import ExperimentResult, ode_pipeline

__all__ = ["run_faults_sweep"]

#: the five paper solvers with their benchmark configurations
SOLVERS: List[Tuple[str, dict]] = [
    ("irk", dict(K=4, m=7)),
    ("diirk", dict(K=4, m=3, I=2)),
    ("epol", dict(K=8)),
    ("pab", dict(K=8)),
    ("pabm", dict(K=8, m=2)),
]


def run_faults_sweep(spec: str = "7:0.15", quick: bool = False) -> ExperimentResult:
    """Fault-free vs degraded makespan of every solver under ``spec``."""
    plan = parse_faults_spec(spec)
    cores = 64 if quick else 256
    n = 120 if quick else 360
    platform = chic().with_cores(cores)
    problem = bruss2d(n)

    result = ExperimentResult(
        title=(
            f"fault sweep (spec {spec}: seed {plan.seed}, "
            f"failure rate {plan.failure_rate:g}"
            + (
                f", -{plan.core_loss.nodes} node(s) before layer "
                f"{plan.core_loss.after_layer}"
                if plan.core_loss
                else ""
            )
            + f") on {platform.name}, {cores} cores, BRUSS2D N={n}"
        ),
        xlabel="solver",
        x=[name for name, _ in SOLVERS],
    )
    clean: List[float] = []
    degraded: List[float] = []
    overhead: List[float] = []
    retries: List[float] = []
    for method, kwargs in SOLVERS:
        cfg = MethodConfig(method, **kwargs)
        base = ode_pipeline(problem, cfg, platform, consecutive())
        faulted = ode_pipeline(
            problem,
            cfg,
            platform,
            consecutive(),
            options=SimulationOptions(faults=plan),
        )
        clean.append(base.makespan)
        degraded.append(faulted.makespan)
        overhead.append(faulted.makespan / base.makespan if base.makespan > 0 else 1.0)
        retries.append(
            sum(getattr(e, "retries", 0) for e in faulted.trace.entries)
            if faulted.trace is not None
            else 0.0
        )
    result.add("fault-free [s]", clean)
    result.add("degraded [s]", degraded)
    result.add("slowdown [x]", overhead)
    result.add("retries", retries)
    return result
