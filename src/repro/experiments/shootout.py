"""Scheduler shoot-out: the zoo vs the adversarial scenario suite.

``python -m repro.experiments --shootout`` runs every scheduler of the
*zoo* -- the paper's layer-based g-search, the CPA baseline and the two
competitors (AMTHA task-to-core mapping, dual-approximation moldable
scheduling) -- on every scenario of
:func:`repro.graphs.adversarial.adversarial_suite` and reports a
per-regime **win matrix**: for each scenario the scheduler with the
smallest simulated makespan scores the win (ties to the first zoo
entry; a scheduler that raises scores an automatic loss and the error
is reported, because surfacing those crashes is half the point of the
sweep).

The harness emits a deterministic ``BENCH_shootout.json`` (schema
``repro.obs.bench/1``): one row per ``scheduler|regime`` pair whose
``makespan`` field (mean simulated makespan over the regime) is gated
in CI via ``repro.obs diff``, exactly like the other committed
benchmarks.  Simulated makespans are pure cost-model arithmetic, so the
file is bit-stable across machines.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional

from ..core.costmodel import CostModel
from ..faults import parse_faults_spec
from ..graphs.adversarial import REGIMES, Scenario, adversarial_suite
from ..pipeline import SchedulingPipeline
from ..scheduling import (
    AMTHAScheduler,
    CPAScheduler,
    LayerBasedScheduler,
    MoldableLayerScheduler,
    Scheduler,
)

__all__ = ["ZOO", "ShootoutCell", "ShootoutResult", "run_shootout"]


def _cpa(cost: CostModel, big: bool) -> Scheduler:
    """CPA, coarsened on big scenarios so allocation stays tractable."""
    return CPAScheduler(cost, granularity=8 if big else 1)


#: the zoo, in tie-break order: name -> factory(cost, big_scenario)
ZOO: Dict[str, Callable[[CostModel, bool], Scheduler]] = {
    "gsearch": lambda cost, big: LayerBasedScheduler(cost),
    "amtha": lambda cost, big: AMTHAScheduler(cost),
    "moldable": lambda cost, big: MoldableLayerScheduler(cost),
    "cpa": _cpa,
}


@dataclass
class ShootoutCell:
    """One (scheduler, scenario) run of the shoot-out."""

    scheduler: str
    scenario: str
    regime: str
    makespan: float = math.inf
    predicted_makespan: float = math.inf
    error: Optional[str] = None
    #: the full pipeline result (not serialized; registry recording)
    result: Any = None

    @property
    def failed(self) -> bool:
        return self.error is not None


@dataclass
class ShootoutResult:
    """Win matrix plus per-cell makespans of one shoot-out sweep."""

    cells: List[ShootoutCell]
    seed: int
    quick: bool
    #: wins[scheduler][regime] and scenario counts per regime
    wins: Dict[str, Dict[str, int]] = field(default_factory=dict)
    scenarios_per_regime: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def regimes(self) -> List[str]:
        """Regimes present in the sweep, in canonical report order."""
        present = {c.regime for c in self.cells}
        return [r for r in REGIMES if r in present]

    def schedulers(self) -> List[str]:
        """Zoo schedulers present in the sweep, in zoo order."""
        present = {c.scheduler for c in self.cells}
        return [s for s in ZOO if s in present]

    def table_str(self) -> str:
        """The win matrix as a paper-style text table."""
        regs = self.regimes()
        width = max(len(s) for s in self.schedulers()) + 2
        head = "scheduler".ljust(width) + "".join(f"{r:>12s}" for r in regs)
        head += f"{'total':>12s}"
        lines = [head, "-" * len(head)]
        for s in self.schedulers():
            row = s.ljust(width)
            total = 0
            for r in regs:
                w = self.wins.get(s, {}).get(r, 0)
                total += w
                row += f"{w:>9d}/{self.scenarios_per_regime[r]:<2d}"
            row += f"{total:>12d}"
            lines.append(row)
        failures = [c for c in self.cells if c.failed]
        if failures:
            lines.append("")
            lines.append(f"{len(failures)} failed cell(s):")
            for c in failures:
                lines.append(f"  {c.scheduler} on {c.scenario}: {c.error}")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def to_bench(self) -> Dict[str, Any]:
        """Deterministic ``repro.obs.bench/1`` payload (diff-gateable).

        One row per ``scheduler|regime``: ``makespan`` is the mean
        simulated makespan over the regime's scenarios (the gated,
        lower-is-better metric); ``wins``/``scenarios``/``failures``
        ride along ungated (no known direction).
        """
        rows: List[Dict[str, Any]] = []
        for s in self.schedulers():
            for r in self.regimes():
                sub = [c for c in self.cells if c.scheduler == s and c.regime == r]
                good = [c.makespan for c in sub if not c.failed]
                rows.append(
                    {
                        "name": f"{s}|{r}",
                        "scheduler": s,
                        "regime": r,
                        "wins": self.wins.get(s, {}).get(r, 0),
                        "scenarios": len(sub),
                        "failures": sum(1 for c in sub if c.failed),
                        "makespan": sum(good) / len(good) if good else float("inf"),
                    }
                )
        return {
            "schema": "repro.obs.bench/1",
            "benchmark": "scheduler shoot-out (win matrix over adversarial scenarios)",
            "seed": self.seed,
            "quick": self.quick,
            "results": rows,
        }

    def write_bench(self, path) -> Path:
        """Write :meth:`to_bench` as pretty JSON to ``path``."""
        out = Path(path)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(self.to_bench(), indent=1) + "\n")
        return out


# ----------------------------------------------------------------------
def _run_cell(name: str, scenario: Scenario) -> ShootoutCell:
    """Run one zoo scheduler on one scenario through the full pipeline."""
    cell = ShootoutCell(
        scheduler=name, scenario=scenario.name, regime=scenario.regime
    )
    try:
        cost = CostModel(scenario.platform_obj())
        scheduler = ZOO[name](cost, scenario.big)
        faults = (
            parse_faults_spec(scenario.fault_spec) if scenario.fault_spec else None
        )
        pipe = SchedulingPipeline(scheduler, faults=faults)
        result = pipe.run(scenario.graph)
        cell.predicted_makespan = float(result.predicted_makespan)
        cell.makespan = (
            float(result.trace.makespan)
            if result.trace is not None
            else cell.predicted_makespan
        )
        cell.result = result
    except Exception as exc:  # noqa: BLE001 -- crashes are shoot-out losses
        cell.error = f"{type(exc).__name__}: {exc}"
    return cell


def run_shootout(
    *,
    quick: bool = False,
    seed: int = 0,
    schedulers: Optional[List[str]] = None,
    suite: Optional[Dict[str, List[Scenario]]] = None,
) -> ShootoutResult:
    """Run the full shoot-out sweep and score the win matrix.

    ``schedulers`` restricts the zoo (default: all of :data:`ZOO`);
    ``suite`` substitutes a pre-built scenario suite (the tests pass
    reduced ones).
    """
    names = list(schedulers or ZOO)
    unknown = [n for n in names if n not in ZOO]
    if unknown:
        raise ValueError(f"unknown scheduler(s) {unknown}; known: {list(ZOO)}")
    if suite is None:
        suite = adversarial_suite(seed, quick=quick)
    cells: List[ShootoutCell] = []
    wins: Dict[str, Dict[str, int]] = {n: {} for n in names}
    per_regime: Dict[str, int] = {}
    for regime, scenarios in suite.items():
        per_regime[regime] = len(scenarios)
        for scenario in scenarios:
            row = [_run_cell(n, scenario) for n in names]
            cells.extend(row)
            finishers = [c for c in row if not c.failed]
            if finishers:
                best = min(finishers, key=lambda c: c.makespan)
                wins[best.scheduler][regime] = (
                    wins[best.scheduler].get(regime, 0) + 1
                )
    return ShootoutResult(
        cells=cells,
        seed=seed,
        quick=quick,
        wins=wins,
        scenarios_per_regime=per_regime,
    )
