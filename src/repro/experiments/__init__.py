"""Experiment runners regenerating every table and figure of the paper's
evaluation (Section 4).  One module per artefact; see EXPERIMENTS.md for
the paper-vs-measured record."""

from .common import ExperimentResult, Series, sequential_step_time, simulate_ode_step
from .fig13_scheduling import run_epol_times, run_fig13, run_pabm_speedups
from .fig14_collectives import run_fig14_left, run_fig14_right
from .fig15_irk_diirk_epol import run_fig15
from .fig16_pab_pabm import run_fig16
from .fig17_npb import run_fig17, run_npb_sweep
from .fig18_hybrid import run_fig18, run_hybrid_panel
from .fig19_mpi_openmp import run_fig19
from .table1_counts import format_table1, run_table1

__all__ = [
    "ExperimentResult",
    "Series",
    "simulate_ode_step",
    "sequential_step_time",
    "run_table1",
    "format_table1",
    "run_fig13",
    "run_pabm_speedups",
    "run_epol_times",
    "run_fig14_left",
    "run_fig14_right",
    "run_fig15",
    "run_fig16",
    "run_fig17",
    "run_npb_sweep",
    "run_fig18",
    "run_hybrid_panel",
    "run_fig19",
]
