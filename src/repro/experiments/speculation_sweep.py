"""Speculation sweep: straggler mitigation across the paper solvers.

Not a figure of the paper -- the paper assumes uniformly fast cores.
This artefact quantifies what speculative backup attempts buy under a
deterministic straggler plan: for every solver the time step is
scheduled and simulated three times -- straggler-free, with stragglers,
and with stragglers plus a :class:`~repro.recovery.SpeculationPolicy` --
and the sweep reports the makespans, the fraction of the straggler
penalty recovered and the backup win/loss counts.  Runs are
deterministic: the same specs yield the same table.
"""

from __future__ import annotations

from typing import List, Tuple

from ..cluster.platforms import chic
from ..faults import parse_faults_spec
from ..mapping.strategies import consecutive
from ..ode import MethodConfig, bruss2d
from ..recovery import parse_speculation_spec
from ..sim.executor import SimulationOptions
from .common import ExperimentResult, ode_pipeline

__all__ = ["run_speculation_sweep"]

#: the five paper solvers with their benchmark configurations
SOLVERS: List[Tuple[str, dict]] = [
    ("irk", dict(K=4, m=7)),
    ("diirk", dict(K=4, m=3, I=2)),
    ("epol", dict(K=8)),
    ("pab", dict(K=8)),
    ("pabm", dict(K=8, m=2)),
]


def run_speculation_sweep(
    spec: str = "1.5",
    faults: str = "7:0.5",
    quick: bool = False,
) -> ExperimentResult:
    """Straggler vs speculated makespan of every solver.

    ``spec`` is the ``FACTOR[:QUANTILE]`` speculation policy
    (:func:`~repro.recovery.parse_speculation_spec`); ``faults`` is the
    ``SEED:RATE`` straggler plan (:func:`~repro.faults.parse_faults_spec`
    -- the straggler rate is ``RATE/2``, so the default injects
    stragglers into a quarter of the tasks).
    """
    policy = parse_speculation_spec(spec)
    plan = parse_faults_spec(faults)
    cores = 64 if quick else 256
    n = 120 if quick else 360
    platform = chic().with_cores(cores)
    problem = bruss2d(n)

    result = ExperimentResult(
        title=(
            f"speculation sweep (policy {spec}, stragglers {faults}: "
            f"seed {plan.seed}, straggler rate {plan.slowdown_rate:g}) "
            f"on {platform.name}, {cores} cores, BRUSS2D N={n}"
        ),
        xlabel="solver",
        x=[name for name, _ in SOLVERS],
    )
    clean: List[float] = []
    straggled: List[float] = []
    speculated: List[float] = []
    recovered: List[float] = []
    wins: List[float] = []
    losses: List[float] = []
    for method, kwargs in SOLVERS:
        cfg = MethodConfig(method, **kwargs)
        base = ode_pipeline(problem, cfg, platform, consecutive())
        slow = ode_pipeline(
            problem,
            cfg,
            platform,
            consecutive(),
            options=SimulationOptions(faults=plan),
        )
        spec_run = ode_pipeline(
            problem,
            cfg,
            platform,
            consecutive(),
            options=SimulationOptions(faults=plan, speculation=policy),
        )
        clean.append(base.makespan)
        straggled.append(slow.makespan)
        speculated.append(spec_run.makespan)
        penalty = slow.makespan - base.makespan
        recovered.append(
            (slow.makespan - spec_run.makespan) / penalty if penalty > 0 else 0.0
        )
        summary = (
            spec_run.trace.speculation_summary()
            if spec_run.trace is not None
            else {"wins": 0, "losses": 0}
        )
        wins.append(float(summary["wins"]))
        losses.append(float(summary["losses"]))
    result.add("fault-free [s]", clean)
    result.add("stragglers [s]", straggled)
    result.add("speculated [s]", speculated)
    result.add("recovered", recovered)
    result.add("backup wins", wins)
    result.add("backup losses", losses)
    return result
