"""Regenerate every table and figure of the paper from the command line.

Usage::

    python -m repro.experiments                 # all artefacts, full scale
    python -m repro.experiments --quick         # reduced scale (~1 min)
    python -m repro.experiments --only fig14 table1
    python -m repro.experiments --out results/  # also write text files

Each artefact prints its paper-style table; with ``--out`` the tables are
additionally written to ``<out>/<artefact>.txt``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List

from .fig13_scheduling import run_fig13
from .fig14_collectives import run_fig14_left, run_fig14_right
from .fig15_irk_diirk_epol import run_fig15
from .fig16_pab_pabm import run_fig16
from .fig17_npb import run_fig17
from .fig18_hybrid import run_fig18
from .fig19_mpi_openmp import run_fig19
from .table1_counts import format_table1, run_table1


def _tables(results) -> List[str]:
    if isinstance(results, list):
        return [r.table_str() for r in results]
    return [results.table_str()]


ARTEFACTS: Dict[str, Callable[[bool], List[str]]] = {
    "table1": lambda quick: [format_table1(run_table1())],
    "fig13": lambda quick: _tables(run_fig13(quick)),
    "fig14": lambda quick: [
        run_fig14_left().table_str(),
        *[r.table_str() for r in run_fig14_right()],
    ],
    "fig15": lambda quick: _tables(run_fig15(quick)),
    "fig16": lambda quick: _tables(run_fig16(quick)),
    "fig17": lambda quick: _tables(run_fig17(quick)),
    "fig18": lambda quick: _tables(run_fig18(quick)),
    "fig19": lambda quick: [run_fig19(quick=quick).table_str()],
}


def main(argv: List[str] = None) -> int:
    ap = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    ap.add_argument("--quick", action="store_true", help="reduced problem sizes")
    ap.add_argument(
        "--only",
        nargs="+",
        choices=sorted(ARTEFACTS),
        help="restrict to specific artefacts",
    )
    ap.add_argument("--out", type=Path, help="directory for text output files")
    args = ap.parse_args(argv)

    selected = args.only or sorted(ARTEFACTS)
    if args.out:
        args.out.mkdir(parents=True, exist_ok=True)

    for name in selected:
        t0 = time.time()
        print(f"### {name} " + "#" * (60 - len(name)))
        tables = ARTEFACTS[name](args.quick)
        text = "\n\n".join(tables)
        print(text)
        print(f"({time.time() - t0:.1f}s)\n")
        if args.out:
            (args.out / f"{name}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
