"""Regenerate every table and figure of the paper from the command line.

Usage::

    python -m repro.experiments                 # all artefacts, full scale
    python -m repro.experiments --quick         # reduced scale (~1 min)
    python -m repro.experiments --only fig14 table1
    python -m repro.experiments --out results/  # also write text files
    python -m repro.experiments --trace-out trace.json  # Perfetto trace
    python -m repro.experiments --faults 7:0.15 --quick  # fault sweep

Each artefact prints its paper-style table; with ``--out`` the tables are
additionally written to ``<out>/<artefact>.txt``.  With ``--trace-out``
one *representative* instrumented pipeline run per selected artefact
(the artefact's workload family at reduced scale) is exported as a
single merged Chrome trace-event / Perfetto JSON file -- load it at
``ui.perfetto.dev`` to inspect where each artefact's time goes.

``--faults SEED:RATE[:LAYER:NODES]`` appends a fault-injection sweep:
every paper solver simulated fault-free and under the deterministic
fault plan, reporting degraded makespans, slowdowns and retry counts
(see :mod:`repro.experiments.faults_sweep`).

``--speculate FACTOR[:QUANTILE]`` appends a speculation sweep: every
paper solver simulated under a deterministic straggler plan with and
without speculative backup attempts, reporting the recovered penalty
and backup win/loss counts (see
:mod:`repro.experiments.speculation_sweep`).

``--shootout`` appends the scheduler shoot-out: every zoo scheduler
(g-search, AMTHA, moldable dual approximation, CPA) runs on every
adversarial scenario of :func:`repro.graphs.adversarial_suite` and a
per-regime win matrix is printed; ``--shootout-out PATH`` additionally
writes the diff-gateable ``repro.obs.bench/1`` JSON (the committed
``BENCH_shootout.json``), and ``--registry-dir`` records each winning
run (see :mod:`repro.experiments.shootout`).

``--checkpoint-dir DIR`` runs one *functional* solver step under a
write-ahead journal + checkpoint store rooted at ``DIR``; with
``--resume`` the journaled tasks are skipped and their outputs restored
(see :mod:`repro.experiments.recovery_run`).  ``--backend pool[:W]``
executes that step on a forked process pool instead of in-process, and
``--backend cluster[:W]`` on socket workers with heartbeat failure
detection and work stealing (see :mod:`repro.runtime.backends`).
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import Callable, Dict, List

from .fig13_scheduling import run_fig13
from .fig14_collectives import run_fig14_left, run_fig14_right
from .fig15_irk_diirk_epol import run_fig15
from .fig16_pab_pabm import run_fig16
from .fig17_npb import run_fig17
from .fig18_hybrid import run_fig18
from .fig19_mpi_openmp import run_fig19
from .table1_counts import format_table1, run_table1


def _tables(results) -> List[str]:
    if isinstance(results, list):
        return [r.table_str() for r in results]
    return [results.table_str()]


ARTEFACTS: Dict[str, Callable[[bool], List[str]]] = {
    "table1": lambda quick: [format_table1(run_table1())],
    "fig13": lambda quick: _tables(run_fig13(quick)),
    "fig14": lambda quick: [
        run_fig14_left().table_str(),
        *[r.table_str() for r in run_fig14_right()],
    ],
    "fig15": lambda quick: _tables(run_fig15(quick)),
    "fig16": lambda quick: _tables(run_fig16(quick)),
    "fig17": lambda quick: _tables(run_fig17(quick)),
    "fig18": lambda quick: _tables(run_fig18(quick)),
    "fig19": lambda quick: [run_fig19(quick=quick).table_str()],
}

#: solver whose time step stands in for each artefact in ``--trace-out``
#: exports (MethodConfig keywords follow the artefact's workload family)
REPRESENTATIVE = {
    "table1": ("irk", dict(K=4, m=3)),
    "fig13": ("pabm", dict(K=8, m=2)),
    "fig14": ("irk", dict(K=4, m=7)),
    "fig15": ("diirk", dict(K=4, m=3, I=2)),
    "fig16": ("pab", dict(K=8)),
    "fig17": ("epol", dict(K=8)),
    "fig18": ("pabm", dict(K=8, m=2)),
    "fig19": ("irk", dict(K=4, m=7)),
}


def _representative_run(name: str, quick: bool):
    """One instrumented pipeline run standing in for artefact ``name``."""
    from ..cluster.platforms import chic
    from ..mapping.strategies import consecutive
    from ..ode import MethodConfig, bruss2d
    from .common import ode_pipeline

    method, kwargs = REPRESENTATIVE[name]
    n = 120 if quick else 360
    cores = 64 if quick else 256
    return ode_pipeline(
        bruss2d(n),
        MethodConfig(method, **kwargs),
        chic().with_cores(cores),
        consecutive(),
    )


def export_traces(selected: List[str], quick: bool, path: Path) -> Path:
    """Write the merged trace-event JSON of the selected artefacts."""
    from ..obs.perfetto import merged_trace, write_trace

    runs = [(name, _representative_run(name, quick)) for name in selected]
    return write_trace(path, merged_trace(runs))


def main(argv: List[str] = None) -> int:
    """CLI entry point; returns the process exit code."""
    ap = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    ap.add_argument("--quick", action="store_true", help="reduced problem sizes")
    ap.add_argument(
        "--only",
        nargs="+",
        choices=sorted(ARTEFACTS),
        help="restrict to specific artefacts",
    )
    ap.add_argument("--out", type=Path, help="directory for text output files")
    ap.add_argument(
        "--trace-out",
        type=Path,
        help="write a merged Perfetto trace-event JSON of one representative "
        "pipeline run per selected artefact",
    )
    ap.add_argument(
        "--registry-dir",
        metavar="DIR",
        help="append one RunRecord per selected artefact (its representative "
        "pipeline run) to the run registry rooted at DIR",
    )
    ap.add_argument(
        "--faults",
        metavar="SEED:RATE[:LAYER:NODES]",
        help="append a deterministic fault-injection sweep over the paper "
        "solvers (e.g. 7:0.15 or 7:0.15:1:2 to also lose 2 nodes after "
        "layer 1)",
    )
    ap.add_argument(
        "--speculate",
        metavar="FACTOR[:QUANTILE]",
        help="append a speculation sweep over the paper solvers: backup "
        "attempts launch once a task runs FACTOR times past its estimate "
        "(or past the QUANTILE of completed attempts; e.g. 1.5 or 1.3:0.9)",
    )
    ap.add_argument(
        "--straggler-faults",
        metavar="SEED:RATE",
        default="7:0.5",
        help="straggler plan of the --speculate sweep (default 7:0.5, "
        "i.e. straggler rate 0.25)",
    )
    ap.add_argument(
        "--shootout",
        action="store_true",
        help="append the scheduler shoot-out: every zoo scheduler on every "
        "adversarial scenario, scored as a per-regime win matrix",
    )
    ap.add_argument(
        "--shootout-out",
        type=Path,
        metavar="PATH",
        help="with --shootout: write the diff-gateable benchmark JSON "
        "(schema repro.obs.bench/1) to PATH",
    )
    ap.add_argument(
        "--shootout-seed",
        type=int,
        default=0,
        help="base seed of the adversarial scenario suite (default 0)",
    )
    ap.add_argument(
        "--checkpoint-dir",
        metavar="DIR",
        help="run one functional IRK step under a write-ahead journal + "
        "checkpoint store rooted at DIR",
    )
    ap.add_argument(
        "--resume",
        action="store_true",
        help="with --checkpoint-dir: resume from the journal, skipping "
        "already-completed tasks",
    )
    ap.add_argument(
        "--backend",
        metavar="serial|pool[:W]|cluster[:W]",
        default="serial",
        help="execution backend of the --checkpoint-dir functional step: "
        "'serial' (default), 'pool' for a forked process pool or "
        "'cluster' for socket workers with heartbeat failure detection, "
        "optionally with a worker count (e.g. pool:4, cluster:4)",
    )
    args = ap.parse_args(argv)

    # a sweep/recovery flag alone runs just that; combine with --only for both
    if (
        args.faults or args.speculate or args.checkpoint_dir or args.shootout
    ) and not args.only:
        selected = []
    else:
        selected = args.only or sorted(ARTEFACTS)
    if args.out:
        args.out.mkdir(parents=True, exist_ok=True)

    for name in selected:
        # perf_counter, not time.time(): the printed per-artefact duration
        # must stay monotonic under wall-clock (NTP) adjustments
        t0 = time.perf_counter()
        print(f"### {name} " + "#" * (60 - len(name)))
        tables = ARTEFACTS[name](args.quick)
        text = "\n\n".join(tables)
        print(text)
        print(f"({time.perf_counter() - t0:.1f}s)\n")
        if args.out:
            (args.out / f"{name}.txt").write_text(text + "\n")
    if args.faults:
        from .faults_sweep import run_faults_sweep

        t0 = time.perf_counter()
        print("### faults " + "#" * 54)
        text = run_faults_sweep(args.faults, args.quick).table_str()
        print(text)
        print(f"({time.perf_counter() - t0:.1f}s)\n")
        if args.out:
            (args.out / "faults.txt").write_text(text + "\n")
    if args.speculate:
        from .speculation_sweep import run_speculation_sweep

        t0 = time.perf_counter()
        print("### speculation " + "#" * 49)
        text = run_speculation_sweep(
            args.speculate, args.straggler_faults, args.quick
        ).table_str()
        print(text)
        print(f"({time.perf_counter() - t0:.1f}s)\n")
        if args.out:
            (args.out / "speculation.txt").write_text(text + "\n")
    if args.shootout:
        from .shootout import run_shootout

        t0 = time.perf_counter()
        print("### shootout " + "#" * 52)
        shoot = run_shootout(quick=args.quick, seed=args.shootout_seed)
        text = shoot.table_str()
        print(text)
        print(f"({time.perf_counter() - t0:.1f}s)\n")
        if args.out:
            (args.out / "shootout.txt").write_text(text + "\n")
        if args.shootout_out:
            path = shoot.write_bench(args.shootout_out)
            print(f"wrote shoot-out benchmark JSON to {path}")
        if args.registry_dir:
            from ..obs.registry import RunRegistry, record_from_result

            registry = RunRegistry(args.registry_dir)
            recorded = 0
            for cell in shoot.cells:
                if cell.result is None:
                    continue
                registry.append(
                    record_from_result(
                        cell.result,
                        spec={
                            "artefact": "shootout",
                            "scheduler": cell.scheduler,
                            "scenario": cell.scenario,
                            "regime": cell.regime,
                            "quick": bool(args.quick),
                        },
                        timestamp=time.time(),
                    )
                )
                recorded += 1
            print(
                f"appended {recorded} shoot-out run record(s) to {registry.path}"
            )
    if args.checkpoint_dir:
        from ..ode import MethodConfig, bruss2d
        from ..recovery import parse_speculation_spec
        from .recovery_run import run_checkpointed_step

        from ..runtime.backends import parse_backend_spec

        policy = parse_speculation_spec(args.speculate) if args.speculate else None
        _, rec = run_checkpointed_step(
            bruss2d(120 if args.quick else 250),
            MethodConfig("irk", K=4, m=3),
            args.checkpoint_dir,
            resume=args.resume,
            speculation=policy,
            backend=parse_backend_spec(args.backend),
        )
        print("### recovery " + "#" * 52)
        print(
            f"checkpointed IRK step in {args.checkpoint_dir} "
            f"({rec.get('backend', 'serial')} backend): "
            f"{rec['tasks_executed']} tasks executed, "
            f"{rec['resumed_tasks']} resumed from journal, "
            f"{rec['checkpoint_bytes']} checkpoint bytes"
        )
    if (args.trace_out or args.registry_dir) and selected:
        # one representative run per artefact, shared by both exports
        runs = [(name, _representative_run(name, args.quick)) for name in selected]
        if args.trace_out:
            from ..obs.perfetto import merged_trace, write_trace

            path = write_trace(args.trace_out, merged_trace(runs))
            print(
                f"wrote trace-event JSON for {len(runs)} artefact run(s) to {path}"
            )
        if args.registry_dir:
            from ..obs.registry import RunRegistry, record_from_result

            registry = RunRegistry(args.registry_dir)
            for name, result in runs:
                registry.append(
                    record_from_result(
                        result,
                        spec={
                            "artefact": name,
                            "solver": REPRESENTATIVE[name][0],
                            "platform": "chic",
                            "quick": bool(args.quick),
                        },
                        timestamp=time.time(),
                    )
                )
            print(
                f"appended {len(runs)} run record(s) to {registry.path}"
            )
    return 0


if __name__ == "__main__":
    sys.exit(main())
