"""Synthetic M-task DAG generators for scale testing and benchmarking.

The paper's workloads top out at a few hundred M-tasks per time step;
exercising the scheduler's asymptotics needs graphs several orders of
magnitude larger.  This package generates seeded, fully deterministic
DAG families -- :func:`chain_graph`, :func:`fork_join_graph`,
:func:`layered_graph` and :func:`random_dag` -- whose tasks carry
realistic work, moldability bounds and collective specs, so the
vectorized cost path is exercised end to end.

:func:`synthesize` is the keyed entry point the scale benchmark
(``benchmarks/bench_schedule_scale.py``) sweeps over;
:func:`fit_to_cores` reconciles a generated graph's moldability bounds
with a target core count.  :mod:`repro.graphs.adversarial` adds the
hostile scenarios (degenerate layers, boundary moldability bounds,
comm- vs compute-dominated regimes, bursty faults) the scheduler
shoot-out sweeps.
"""

from .adversarial import REGIMES, Scenario, adversarial_suite
from .synthetic import (
    FAMILIES,
    chain_graph,
    fit_to_cores,
    fork_join_graph,
    layered_graph,
    random_dag,
    synthesize,
)

__all__ = [
    "FAMILIES",
    "REGIMES",
    "Scenario",
    "adversarial_suite",
    "chain_graph",
    "fit_to_cores",
    "fork_join_graph",
    "layered_graph",
    "random_dag",
    "synthesize",
]
