"""Adversarial scheduling scenarios for the scheduler shoot-out.

The synthetic families (:mod:`repro.graphs.synthetic`) exercise the
scheduler's asymptotics on *well-formed* graphs; this module generates
the hostile ones -- the inputs a scheduler meets once it leaves the
happy path of the paper's ODE workloads:

* **degenerate** -- single-task graphs, zero-work chains and layers,
  layers whose every width clamps to 1;
* **compute** -- compute-dominated cost regime (heavy work, no
  collectives, negligible edge payloads);
* **comm** -- communication-dominated regime (tiny work, heavy
  collectives and fat re-distribution payloads);
* **bounds** -- ``min_procs``/``max_procs`` at the topology boundary:
  tasks pinned to the full machine, serialised by ``max_procs=1``,
  locked into a tight moldability band, or generated beyond the core
  count and clamped by :func:`repro.graphs.synthetic.fit_to_cores`;
* **scale** -- a 10^4-task layered graph (reduced in quick mode) over
  heterogeneous core counts;
* **faulty** -- moderate graphs under bursty deterministic fault plans
  (high failure rates, straggler bursts).

Every scenario is seeded and fully deterministic.  :func:`adversarial_suite`
returns the scenarios grouped by regime; the shoot-out harness
(``python -m repro.experiments --shootout``) runs every zoo scheduler on
each of them.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.graph import DataFlow, TaskGraph
from ..core.task import CollectiveSpec, MTask
from .synthetic import fit_to_cores, layered_graph, random_dag

__all__ = ["Scenario", "adversarial_suite", "REGIMES"]

#: regime keys :func:`adversarial_suite` produces, in report order
REGIMES = ("degenerate", "compute", "comm", "bounds", "scale", "faulty")


@dataclass(eq=False)
class Scenario:
    """One adversarial scheduling scenario.

    ``platform``/``cores`` name the target partition (resolved via
    :func:`repro.cluster.platforms.by_name`), ``fault_spec`` optionally
    carries a ``SEED:RATE[:LAYER:NODES]`` fault plan for
    :func:`repro.faults.parse_faults_spec`, and ``big`` marks scenarios
    large enough that the harness may swap in coarsened scheduler
    variants (e.g. CPA with a larger allocation step).
    """

    name: str
    regime: str
    graph: TaskGraph
    cores: int
    platform: str = "chic"
    fault_spec: Optional[str] = None
    big: bool = False

    def platform_obj(self):
        """The resolved platform partition this scenario targets."""
        from ..cluster.platforms import by_name

        return by_name(self.platform).with_cores(self.cores)


def _task(
    name: str,
    work: float,
    *,
    min_procs: int = 1,
    max_procs: Optional[int] = None,
    comm: Tuple[CollectiveSpec, ...] = (),
) -> MTask:
    """Shorthand M-task constructor for hand-built scenario graphs."""
    return MTask(
        name=name, work=work, comm=comm, min_procs=min_procs, max_procs=max_procs
    )


def _layered(
    rng: random.Random,
    name: str,
    layers: List[List[MTask]],
    elements: int = 64,
) -> TaskGraph:
    """Wire hand-built layers into a graph (each task keeps >= 1 pred)."""
    g = TaskGraph(name)
    with g.deferred_validation():
        prev: List[MTask] = []
        for layer in layers:
            for t in layer:
                g.add_task(t)
                if prev:
                    g.add_dependency(
                        rng.choice(prev),
                        t,
                        [DataFlow(var="x", elements=rng.randint(1, elements))],
                    )
            prev = layer
    return g


# ----------------------------------------------------------------------
# regimes
# ----------------------------------------------------------------------
def _degenerate(seed: int) -> List[Scenario]:
    """Single tasks, zero-work layers, width-clamped layers."""
    rng = random.Random(seed)
    single = _layered(rng, "adv/single-task", [[_task("only", 5e8)]])
    zero_chain = _layered(
        rng,
        "adv/zero-work-chain",
        [[_task(f"z{i}", 0.0)] for i in range(5)],
    )
    zero_layer = _layered(
        rng,
        "adv/zero-work-layer",
        [
            [_task("src", 1e8)],
            [_task(f"w{i}", 0.0) for i in range(8)],
            [_task("sink", 1e8)],
        ],
    )
    width1 = _layered(
        rng,
        "adv/width1-layer",
        [
            [_task(f"s{i}", rng.uniform(1e8, 5e8), max_procs=1) for i in range(6)],
            [_task(f"t{i}", rng.uniform(1e8, 5e8), max_procs=1) for i in range(6)],
        ],
    )
    return [
        Scenario("single-task", "degenerate", single, 16),
        Scenario("zero-work-chain", "degenerate", zero_chain, 16),
        Scenario("zero-work-layer", "degenerate", zero_layer, 16),
        Scenario("width1-layer", "degenerate", width1, 16),
    ]


def _cost_regimes(seed: int) -> Tuple[List[Scenario], List[Scenario]]:
    """Compute-dominated vs communication-dominated layered graphs."""
    rng = random.Random(seed)
    heavy = CollectiveSpec(
        op="allgather", total_elements=2e6, count=8.0, scope="group"
    )
    bcast = CollectiveSpec(
        op="bcast", total_elements=1e6, count=4.0, scope="global"
    )
    compute_layers = [
        [_task(f"c{li}_{j}", rng.uniform(5e9, 2e10)) for j in range(10)]
        for li in range(4)
    ]
    comm_layers = [
        [
            _task(
                f"m{li}_{j}",
                rng.uniform(1e5, 1e6),
                comm=(heavy, bcast),
            )
            for j in range(10)
        ]
        for li in range(4)
    ]
    compute = _layered(rng, "adv/compute-bound", compute_layers, elements=8)
    comm = _layered(rng, "adv/comm-bound", comm_layers, elements=500_000)
    return (
        [Scenario("compute-bound", "compute", compute, 64)],
        [Scenario("comm-bound", "comm", comm, 64)],
    )


def _bounds(seed: int, cores: int = 16) -> List[Scenario]:
    """Moldability bounds at the topology boundary."""
    rng = random.Random(seed)
    pinned = _layered(
        rng,
        "adv/minp-at-cores",
        [
            [_task(f"p{i}", rng.uniform(1e9, 4e9), min_procs=cores)]
            for i in range(3)
        ],
    )
    serial = _layered(
        rng,
        "adv/maxp-one",
        [[_task(f"s{i}", rng.uniform(1e8, 1e9), max_procs=1) for i in range(12)]],
    )
    band = _layered(
        rng,
        "adv/tight-band",
        [
            [
                _task(f"b{li}_{j}", rng.uniform(1e9, 4e9), min_procs=4, max_procs=4)
                for j in range(5)
            ]
            for li in range(3)
        ],
    )
    # generated beyond the core count, then clamped by the hardened
    # generator contract (exercises fit_to_cores end to end)
    overgen = fit_to_cores(
        random_dag(40, seed=seed, elements=256), cores
    )
    overgen.name = "adv/overgen-clamped"
    return [
        Scenario("minp-at-cores", "bounds", pinned, cores),
        Scenario("maxp-one", "bounds", serial, cores),
        Scenario("tight-band", "bounds", band, cores),
        Scenario("overgen-clamped", "bounds", overgen, cores),
    ]


def _scale(seed: int, quick: bool) -> List[Scenario]:
    """Large layered graphs across heterogeneous core counts."""
    n = 1200 if quick else 10_000
    out = [
        Scenario(
            f"layered-{n}",
            "scale",
            layered_graph(n, seed=seed, cores=64),
            64,
            big=True,
        ),
        Scenario(
            f"layered-{n}-juropa",
            "scale",
            layered_graph(n, seed=seed + 1, cores=32),
            32,
            platform="juropa",
            big=True,
        ),
    ]
    return out


def _faulty(seed: int) -> List[Scenario]:
    """Moderate graphs under bursty deterministic fault plans."""
    rng = random.Random(seed)
    layers = [
        [_task(f"f{li}_{j}", rng.uniform(5e8, 2e9)) for j in range(8)]
        for li in range(4)
    ]
    g1 = _layered(rng, "adv/faulty-burst", layers)
    g2 = layered_graph(96, seed=seed, cores=16)
    g2.name = "adv/faulty-gen"
    return [
        Scenario("faulty-burst", "faulty", g1, 16, fault_spec=f"{seed}:0.4"),
        Scenario("faulty-gen", "faulty", g2, 16, fault_spec=f"{seed + 1}:0.5"),
    ]


def adversarial_suite(
    seed: int = 0, *, quick: bool = False
) -> Dict[str, List[Scenario]]:
    """All adversarial scenarios, grouped by regime (report order)."""
    compute, comm = _cost_regimes(seed + 1)
    return {
        "degenerate": _degenerate(seed),
        "compute": compute,
        "comm": comm,
        "bounds": _bounds(seed + 2),
        "scale": _scale(seed + 3, quick),
        "faulty": _faulty(seed + 4),
    }
