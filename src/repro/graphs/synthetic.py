"""Seeded generators for the synthetic DAG families.

Every generator takes an integer ``seed`` and drives all randomness
through one ``random.Random(seed)`` instance, so a (family, size, seed)
triple always produces the same graph -- tasks, parameters, collectives
and edges alike.  Graphs are built inside
:meth:`~repro.core.graph.TaskGraph.deferred_validation`, so construction
is O(V + E) with a single closing acyclicity check.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from ..core.graph import DataFlow, TaskGraph
from ..core.task import CollectiveSpec, MTask

__all__ = [
    "chain_graph",
    "fork_join_graph",
    "layered_graph",
    "random_dag",
    "synthesize",
    "fit_to_cores",
    "FAMILIES",
]

#: collective shapes a generated task draws from (op, scope, tpo); a
#: mix of the patterns the ODE workloads exhibit (Table 1)
_COMM_MENU = (
    ("allgather", "group", False),
    ("bcast", "global", True),
    ("allreduce", "group", False),
    ("ptp", "orthogonal", False),
)


def _fit_bounds(
    name: str,
    min_procs: int,
    max_procs: Optional[int],
    cores: Optional[int],
    strict: bool = False,
) -> tuple:
    """Reconcile one task's moldability bounds with a target core count.

    Returns ``(min_procs, max_procs)`` such that ``min_procs <= cores``
    (when a core count is given) and ``min_procs <= max_procs``.  With
    ``strict=True`` an infeasible bound raises one :class:`ValueError`
    naming the task instead of clamping -- otherwise the clamp is
    deterministic: ``min_procs`` drops to the core count, and a
    ``max_procs`` below ``min_procs`` rises to it.
    """
    if cores is not None and cores < 1:
        raise ValueError("cores must be positive")
    if max_procs is not None and max_procs < min_procs:
        if strict:
            raise ValueError(
                f"task {name!r}: min_procs={min_procs} exceeds "
                f"max_procs={max_procs}"
            )
        max_procs = min_procs
    if cores is not None and min_procs > cores:
        if strict:
            raise ValueError(
                f"task {name!r}: min_procs={min_procs} exceeds the "
                f"{cores}-core target topology"
            )
        min_procs = cores
    return min_procs, max_procs


def fit_to_cores(graph: TaskGraph, cores: int, *, strict: bool = False) -> TaskGraph:
    """Clamp every task's moldability bounds to a ``cores``-core machine.

    Historically a generated task could declare ``min_procs`` larger
    than the scheduling platform and the violation only surfaced as an
    opaque failure deep inside ``schedule_layer``.  This pass reconciles
    the bounds up front: with ``strict=False`` (default) each offending
    task is clamped deterministically via the same rules the generators
    apply; with ``strict=True`` the first offender raises a
    :class:`ValueError` naming the task.  Tasks are updated *in place*
    (graph nodes are keyed by task identity) and the graph is returned
    for chaining.
    """
    for t in graph:
        t.min_procs, t.max_procs = _fit_bounds(
            t.name, t.min_procs, t.max_procs, cores, strict
        )
    return graph


def _make_task(
    rng: random.Random, name: str, elements: int, cores: Optional[int] = None
) -> MTask:
    """One synthetic task: lognormal-ish work, occasional moldability
    bounds (clamped to ``cores`` when given), zero to two collective
    specs."""
    work = elements * rng.uniform(5.0, 50.0)
    min_procs = rng.choice((1, 1, 1, 1, 2, 4))
    max_procs: Optional[int] = rng.choice((None, None, None, 256))
    min_procs, max_procs = _fit_bounds(name, min_procs, max_procs, cores)
    comm = []
    for _ in range(rng.randint(0, 2)):
        op, scope, tpo = rng.choice(_COMM_MENU)
        comm.append(
            CollectiveSpec(
                op=op,
                total_elements=float(rng.randint(1, elements)),
                count=float(rng.randint(1, 4)),
                scope=scope,
                task_parallel_only=tpo,
            )
        )
    return MTask(
        name=name,
        work=work,
        comm=tuple(comm),
        min_procs=min_procs,
        max_procs=max_procs,
    )


def _flow(rng: random.Random, var: str, elements: int) -> DataFlow:
    return DataFlow(var=var, elements=rng.randint(1, elements))


def chain_graph(
    n: int, *, seed: int = 0, elements: int = 1024, cores: Optional[int] = None
) -> TaskGraph:
    """A single linear chain of ``n`` tasks (contraction stress case)."""
    if n <= 0:
        raise ValueError("n must be positive")
    rng = random.Random(seed)
    g = TaskGraph(f"synthetic/chain-{n}-s{seed}")
    with g.deferred_validation():
        prev: Optional[MTask] = None
        for i in range(n):
            t = g.add_task(_make_task(rng, f"c{i}", elements, cores))
            if prev is not None:
                g.add_dependency(prev, t, [_flow(rng, "x", elements)])
            prev = t
    return g


def fork_join_graph(
    n: int,
    *,
    width: int = 32,
    seed: int = 0,
    elements: int = 1024,
    cores: Optional[int] = None,
) -> TaskGraph:
    """Repeated fork-join stages: fork -> ``width`` parallel tasks -> join.

    ``n`` is the approximate total task count; the generator emits
    ``ceil`` stages of ``width + 2`` tasks until it is reached.
    """
    if n <= 0 or width <= 0:
        raise ValueError("n and width must be positive")
    rng = random.Random(seed)
    g = TaskGraph(f"synthetic/forkjoin-{n}-w{width}-s{seed}")
    with g.deferred_validation():
        made = 0
        stage = 0
        prev_join: Optional[MTask] = None
        while made < n:
            fork = g.add_task(_make_task(rng, f"fork{stage}", elements, cores))
            if prev_join is not None:
                g.add_dependency(prev_join, fork, [_flow(rng, "y", elements)])
            body = []
            for j in range(width):
                t = g.add_task(_make_task(rng, f"b{stage}_{j}", elements, cores))
                g.add_dependency(fork, t, [_flow(rng, "x", elements)])
                body.append(t)
            join = g.add_task(_make_task(rng, f"join{stage}", elements, cores))
            for t in body:
                g.add_dependency(t, join, [_flow(rng, "x", elements)])
            made += width + 2
            stage += 1
            prev_join = join
    return g


def layered_graph(
    n: int,
    *,
    width: int = 64,
    edge_density: float = 0.1,
    seed: int = 0,
    elements: int = 1024,
    cores: Optional[int] = None,
) -> TaskGraph:
    """A wide layered DAG: ``ceil(n / width)`` layers of ``width`` tasks.

    Edges run only between consecutive layers; each task of a
    non-initial layer keeps at least one predecessor (connectivity), and
    further cross edges appear with probability ``edge_density``.  This
    is the scheduler's hot shape: wide independent layers driving the
    ``g``-search.
    """
    if n <= 0 or width <= 0:
        raise ValueError("n and width must be positive")
    if not 0.0 <= edge_density <= 1.0:
        raise ValueError("edge_density must be within [0, 1]")
    rng = random.Random(seed)
    g = TaskGraph(f"synthetic/layered-{n}-w{width}-s{seed}")
    with g.deferred_validation():
        prev_layer: List[MTask] = []
        made = 0
        li = 0
        while made < n:
            cur = []
            for j in range(min(width, n - made)):
                t = g.add_task(_make_task(rng, f"l{li}_{j}", elements, cores))
                cur.append(t)
            made += len(cur)
            if prev_layer:
                for t in cur:
                    g.add_dependency(
                        rng.choice(prev_layer), t, [_flow(rng, "x", elements)]
                    )
                    for p in prev_layer:
                        if rng.random() < edge_density:
                            g.add_dependency(p, t, [_flow(rng, "x", elements)])
            prev_layer = cur
            li += 1
    return g


def random_dag(
    n: int,
    *,
    max_preds: int = 3,
    seed: int = 0,
    elements: int = 1024,
    cores: Optional[int] = None,
) -> TaskGraph:
    """A random DAG over a fixed topological order.

    Task ``i`` draws up to ``max_preds`` predecessors uniformly from a
    recent window of earlier tasks, which keeps the depth/width mix
    irregular -- neither chain- nor layer-shaped.
    """
    if n <= 0:
        raise ValueError("n must be positive")
    rng = random.Random(seed)
    g = TaskGraph(f"synthetic/random-{n}-s{seed}")
    with g.deferred_validation():
        tasks: List[MTask] = []
        for i in range(n):
            t = g.add_task(_make_task(rng, f"r{i}", elements, cores))
            if tasks:
                window = tasks[-256:]
                k = rng.randint(1, max_preds)
                for p in rng.sample(window, min(k, len(window))):
                    g.add_dependency(p, t, [_flow(rng, "x", elements)])
            tasks.append(t)
    return g


#: the benchmarkable families, keyed as the scale sweep names them
FAMILIES: Dict[str, Callable[..., TaskGraph]] = {
    "chain": chain_graph,
    "forkjoin": fork_join_graph,
    "layered": layered_graph,
    "random": random_dag,
}


def synthesize(family: str, n: int, *, seed: int = 0, **kwargs) -> TaskGraph:
    """Generate a graph of ``family`` with roughly ``n`` tasks."""
    try:
        fn = FAMILIES[family]
    except KeyError:
        raise ValueError(
            f"unknown family {family!r}; known: {sorted(FAMILIES)}"
        ) from None
    return fn(n, seed=seed, **kwargs)
